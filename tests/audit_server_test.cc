// End-to-end tests for the sharded audit server (server/audit_server.h)
// over real loopback sockets: deterministic tenant routing, per-tenant
// cycle ordering under concurrent clients, protocol error handling
// (malformed JSON answered, not disconnected; oversized frames
// disconnected), ingest validation, backpressure, and graceful shutdown.
#include "server/audit_server.h"

#include <sys/socket.h>

#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/poller.h"
#include "scenario/generator.h"
#include "server/binary_codec.h"
#include "server/protocol.h"
#include "util/json.h"

namespace auditgame::server {
namespace {

class AuditServerTest : public ::testing::Test {
 protected:
  void StartServer(AuditServerOptions options = {}) {
    auto spec = scenario::SpecByName("uniform");
    ASSERT_TRUE(spec.ok());
    spec->num_types = 4;
    auto instance = scenario::Generate(*spec);
    ASSERT_TRUE(instance.ok());
    baseline_ = instance->alert_distributions;

    options.port = 0;  // ephemeral
    options.service.budgets = {6.0};
    options.service.solver_options.ishm.step_size = 0.25;
    options.service.num_threads = 1;
    server_ = std::make_unique<AuditServer>(*std::move(instance), options);
    ASSERT_TRUE(server_->Start().ok());
    thread_ = std::thread([this] {
      util::Status run = server_->Run();
      EXPECT_TRUE(run.ok()) << run;
    });
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->RequestStop();
      // joinable() guard: a failed Start() leaves thread_ never launched.
      if (thread_.joinable()) thread_.join();
    }
  }

  net::FrameClient Connect() {
    auto client =
        net::FrameClient::Connect("127.0.0.1", server_->port(), 5000);
    EXPECT_TRUE(client.ok()) << client.status();
    EXPECT_TRUE(client->SetReceiveTimeout(30000).ok());
    return std::move(client).value();
  }

  /// One round trip, parsed.
  util::JsonValue Call(net::FrameClient& client, const std::string& payload) {
    auto response = client.Call(payload);
    EXPECT_TRUE(response.ok()) << response.status();
    if (!response.ok()) return util::JsonValue();
    auto doc = util::JsonValue::Parse(*response);
    EXPECT_TRUE(doc.ok()) << doc.status();
    return doc.ok() ? *std::move(doc) : util::JsonValue();
  }

  static std::string StatusOf(const util::JsonValue& doc) {
    auto status = doc.GetString("status");
    return status.ok() ? *status : "<missing>";
  }

  std::vector<prob::CountDistribution> baseline_;
  std::unique_ptr<AuditServer> server_;
  std::thread thread_;
};

TEST(ShardRoutingTest, DeterministicAndInRange) {
  for (int i = 0; i < 200; ++i) {
    const std::string tenant = "tenant-" + std::to_string(i);
    const size_t shard = AuditServer::ShardForTenant(tenant, 4);
    EXPECT_LT(shard, 4u);
    // Same tenant id => same shard, every time (the ordering guarantee's
    // foundation).
    EXPECT_EQ(shard, AuditServer::ShardForTenant(tenant, 4));
  }
}

TEST(ShardRoutingTest, SpreadsTenantsAcrossShards) {
  std::set<size_t> used;
  for (int i = 0; i < 64; ++i) {
    used.insert(
        AuditServer::ShardForTenant("tenant-" + std::to_string(i), 4));
  }
  // 64 tenants into 4 buckets missing one entirely would mean a broken
  // hash, not bad luck (probability ~4 * (3/4)^64 < 1e-7).
  EXPECT_EQ(used.size(), 4u);
}

TEST_F(AuditServerTest, SolveCyclesAreOrderedUnderConcurrentClients) {
  StartServer();
  constexpr int kClients = 3;
  constexpr int kSolvesEach = 4;

  // Several connections hammer *the same tenant* concurrently: the shard's
  // FIFO queue must serialize them, so the union of returned cycle numbers
  // is exactly 1..N with no duplicates, and each client's own sequence is
  // strictly increasing.
  std::vector<std::vector<int>> seen(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, c, &seen] {
      auto client = Connect();
      for (int i = 0; i < kSolvesEach; ++i) {
        util::JsonValue doc = Call(
            client, MakeSolveCycleRequest(c * 100 + i, "shared-tenant"));
        ASSERT_EQ(StatusOf(doc), "ok");
        auto cycle = doc.GetNumber("cycle");
        ASSERT_TRUE(cycle.ok());
        seen[c].push_back(static_cast<int>(*cycle));
      }
    });
  }
  for (std::thread& t : clients) t.join();

  std::set<int> all;
  for (const std::vector<int>& s : seen) {
    for (size_t i = 0; i < s.size(); ++i) {
      EXPECT_TRUE(all.insert(s[i]).second) << "duplicate cycle " << s[i];
      if (i > 0) EXPECT_LT(s[i - 1], s[i]);
    }
  }
  ASSERT_EQ(all.size(), static_cast<size_t>(kClients * kSolvesEach));
  EXPECT_EQ(*all.begin(), 1);
  EXPECT_EQ(*all.rbegin(), kClients * kSolvesEach);
}

TEST_F(AuditServerTest, MalformedJsonGetsErrorResponseNotDisconnect) {
  StartServer();
  auto client = Connect();
  util::JsonValue doc = Call(client, "this is not json {");
  EXPECT_EQ(StatusOf(doc), "error");
  auto id = doc.GetNumber("id");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(static_cast<int>(*id), -1);  // no id recoverable

  // The connection survives: a later well-formed request works.
  doc = Call(client, MakeStatsRequest(7));
  EXPECT_EQ(StatusOf(doc), "ok");
  auto echoed = doc.GetNumber("id");
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(static_cast<int>(*echoed), 7);
}

TEST_F(AuditServerTest, AbsurdNumbersAreRejectedNotUndefined) {
  StartServer();
  auto client = Connect();
  // An id outside the exact-integer range of a double must not reach a
  // float->int cast (UB); it degrades to -1. UBSan CI guards the cast.
  util::JsonValue doc = Call(client, R"({"verb":"stats","id":1e300})");
  EXPECT_EQ(StatusOf(doc), "ok");
  auto id = doc.GetNumber("id");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, -1.0);
  // Same for a distribution min far outside int range: error frame.
  doc = Call(client,
             R"({"verb":"ingest","tenant":"t","id":2,)"
             R"("distributions":[{"min":1e30,"pmf":[1.0]}]})");
  EXPECT_EQ(StatusOf(doc), "error");
}

TEST_F(AuditServerTest, UnknownVerbEchoesRequestId) {
  StartServer();
  auto client = Connect();
  util::JsonValue doc = Call(client, R"({"verb":"nope","id":42})");
  EXPECT_EQ(StatusOf(doc), "error");
  auto id = doc.GetNumber("id");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(static_cast<int>(*id), 42);
}

TEST_F(AuditServerTest, IngestValidatesAndApplies) {
  StartServer();
  auto client = Connect();

  // Wrong type count: rejected with an error frame, connection stays up.
  std::vector<prob::CountDistribution> two(baseline_.begin(),
                                           baseline_.begin() + 2);
  util::JsonValue doc = Call(client, MakeIngestRequest(1, "acme", two));
  EXPECT_EQ(StatusOf(doc), "error");

  // Full baseline: accepted, and the following cycle solves.
  doc = Call(client, MakeIngestRequest(2, "acme", baseline_));
  EXPECT_EQ(StatusOf(doc), "ok");
  doc = Call(client, MakeSolveCycleRequest(3, "acme"));
  ASSERT_EQ(StatusOf(doc), "ok");
  const util::JsonValue* policies = doc.Find("policies");
  ASSERT_NE(policies, nullptr);
  ASSERT_TRUE(policies->is_array());
  ASSERT_EQ(policies->as_array().size(), 1u);  // one configured budget
  auto objective = policies->as_array()[0].GetNumber("objective");
  EXPECT_TRUE(objective.ok());
}

TEST_F(AuditServerTest, OversizedFrameDisconnectsButServerSurvives) {
  AuditServerOptions options;
  options.max_frame_payload = 256;
  StartServer(options);

  auto victim = Connect();
  const std::string big(1024, 'x');
  ASSERT_TRUE(victim.Send(big).ok());
  // The server cannot resync past an untrusted length word: it drops the
  // connection, so the read fails (EOF) rather than returning a frame.
  EXPECT_FALSE(victim.Receive().ok());

  // A fresh connection is unaffected.
  auto fresh = Connect();
  util::JsonValue doc = Call(fresh, MakeStatsRequest(1));
  EXPECT_EQ(StatusOf(doc), "ok");
}

TEST_F(AuditServerTest, BackpressureAnswersEveryRequest) {
  AuditServerOptions options;
  options.num_shards = 1;
  options.queue_capacity = 1;
  options.max_batch = 1;
  StartServer(options);

  // More concurrent clients than queue slots: every request must still get
  // a terminal answer — `ok` or `overloaded` — never silence.
  constexpr int kClients = 4;
  constexpr int kRequestsEach = 3;
  std::vector<int> answered(kClients, 0);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, c, &answered] {
      auto client = Connect();
      for (int i = 0; i < kRequestsEach; ++i) {
        util::JsonValue doc = Call(
            client, MakeSolveCycleRequest(c * 100 + i, "hot-tenant"));
        const std::string status = StatusOf(doc);
        ASSERT_TRUE(status == "ok" || status == "overloaded") << status;
        ++answered[c];
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(answered[c], kRequestsEach);
}

TEST_F(AuditServerTest, StatsReportsShardsAndTenants) {
  AuditServerOptions options;
  options.num_shards = 3;
  options.stats_refresh_ms = 10;
  StartServer(options);
  auto client = Connect();
  ASSERT_EQ(StatusOf(Call(client, MakeSolveCycleRequest(1, "t1"))), "ok");
  ASSERT_EQ(StatusOf(Call(client, MakeSolveCycleRequest(2, "t2"))), "ok");

  // The stats verb answers from a periodically refreshed snapshot (it
  // never locks a shard from a reactor thread), so the counters converge
  // to the truth rather than reflecting it instantaneously: poll.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  double tenants = 0.0, solves = 0.0;
  int64_t id = 3;
  util::JsonValue doc;
  for (;;) {
    doc = Call(client, MakeStatsRequest(id++));
    ASSERT_EQ(StatusOf(doc), "ok");
    const util::JsonValue* shards = doc.Find("shards");
    ASSERT_NE(shards, nullptr);
    ASSERT_TRUE(shards->is_array());
    ASSERT_EQ(shards->as_array().size(), 3u);
    tenants = 0.0;
    solves = 0.0;
    for (const util::JsonValue& shard : shards->as_array()) {
      auto t = shard.GetNumber("tenants");
      auto s = shard.GetNumber("solves");
      ASSERT_TRUE(t.ok() && s.ok());
      tenants += *t;
      solves += *s;
    }
    if (solves >= 2.0 || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(tenants, 2.0);
  EXPECT_EQ(solves, 2.0);
  const util::JsonValue* server_stats = doc.Find("server");
  ASSERT_NE(server_stats, nullptr);
  auto protocol_errors = server_stats->GetNumber("protocol_errors");
  ASSERT_TRUE(protocol_errors.ok());
  EXPECT_EQ(*protocol_errors, 0.0);
  auto reactors = server_stats->GetNumber("reactors");
  ASSERT_TRUE(reactors.ok());
  EXPECT_GE(*reactors, 1.0);
}

TEST_F(AuditServerTest, PipelinedBinaryRequestsInterleaveAcrossTenants) {
  AuditServerOptions options;
  options.num_shards = 2;
  options.queue_capacity = 64;
  StartServer(options);
  auto client = Connect();

  // One connection pipelines five solves each for two tenants (different
  // shards) without reading a single response. The correlation ids pair
  // the answers; across tenants they may interleave in any order, but each
  // tenant's own cycle numbers must come back strictly increasing.
  constexpr int kSolves = 5;
  for (int i = 1; i <= kSolves; ++i) {
    client.QueueSend(EncodeBinarySolveCycleRequest(100 + i, "tenant-a"));
    client.QueueSend(EncodeBinarySolveCycleRequest(200 + i, "tenant-b"));
  }
  ASSERT_TRUE(client.FlushSends().ok());

  int next_a = 1, next_b = 1;
  int64_t last_cycle_a = 0, last_cycle_b = 0;
  for (int n = 0; n < 2 * kSolves; ++n) {
    auto payload = client.Receive();
    ASSERT_TRUE(payload.ok()) << payload.status();
    ASSERT_TRUE(IsBinaryFrame(*payload));  // response mirrors the encoding
    auto response = DecodeBinaryResponse(*payload);
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_EQ(response->status, kBinaryStatusOk);
    if (response->correlation_id > 200) {
      EXPECT_EQ(response->correlation_id, 200 + next_b++);
      EXPECT_GT(response->cycle, last_cycle_b);
      last_cycle_b = response->cycle;
    } else {
      EXPECT_EQ(response->correlation_id, 100 + next_a++);
      EXPECT_GT(response->cycle, last_cycle_a);
      last_cycle_a = response->cycle;
    }
  }
  EXPECT_EQ(next_a, kSolves + 1);
  EXPECT_EQ(next_b, kSolves + 1);
}

TEST_F(AuditServerTest, JsonAndBinaryCoexistOnOneConnection) {
  StartServer();
  auto client = Connect();

  // JSON ingest, binary solve, JSON stats — every response mirrors its
  // request's encoding, on the same connection.
  util::JsonValue doc = Call(client, MakeIngestRequest(1, "mixed", baseline_));
  EXPECT_EQ(StatusOf(doc), "ok");

  ASSERT_TRUE(client.Send(EncodeBinarySolveCycleRequest(2, "mixed")).ok());
  auto payload = client.Receive();
  ASSERT_TRUE(payload.ok()) << payload.status();
  ASSERT_TRUE(IsBinaryFrame(*payload));
  auto response = DecodeBinaryResponse(*payload);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->correlation_id, 2);
  EXPECT_EQ(response->status, kBinaryStatusOk);
  EXPECT_EQ(response->cycle, 1);

  doc = Call(client, MakeStatsRequest(3));
  EXPECT_EQ(StatusOf(doc), "ok");
}

TEST_F(AuditServerTest, MalformedBinaryFrameAnswersThenDisconnects) {
  StartServer();
  auto client = Connect();

  // A payload that claims to be binary (magic byte) but fails to decode
  // means encoder desync: the server answers one binary error frame and
  // then drops the connection — unlike malformed JSON, which is survivable.
  std::string garbage = EncodeBinarySolveCycleRequest(9, "tenant");
  garbage[3] = 77;  // unknown verb
  ASSERT_TRUE(client.Send(garbage).ok());
  auto payload = client.Receive();
  ASSERT_TRUE(payload.ok()) << payload.status();
  ASSERT_TRUE(IsBinaryFrame(*payload));
  auto response = DecodeBinaryResponse(*payload);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, kBinaryStatusError);
  EXPECT_EQ(response->correlation_id, 9);  // best-effort id echo
  EXPECT_FALSE(client.Receive().ok());     // sticky: EOF follows

  // A fresh connection is unaffected.
  auto fresh = Connect();
  EXPECT_EQ(StatusOf(Call(fresh, MakeStatsRequest(1))), "ok");
}

TEST_F(AuditServerTest, IdleConnectionsAreReaped) {
  AuditServerOptions options;
  options.idle_timeout_ms = 50;
  StartServer(options);
  auto idle = Connect();
  // No request ever sent: the reactor's idle sweep must close the
  // connection (EOF on our side) instead of holding the fd forever.
  EXPECT_FALSE(idle.Receive().ok());

  // A connection that keeps talking stays up well past the timeout.
  auto busy = Connect();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(StatusOf(Call(busy, MakeStatsRequest(i))), "ok");
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
}

TEST_F(AuditServerTest, MaxConnectionsCapClosesExcessAccepts) {
  AuditServerOptions options;
  options.max_connections = 1;
  StartServer(options);

  auto first = Connect();
  ASSERT_EQ(StatusOf(Call(first, MakeStatsRequest(1))), "ok");

  // The second accept is over the cap: closed immediately, so the first
  // read sees EOF instead of a response.
  auto second = Connect();
  ASSERT_TRUE(second.Send(MakeStatsRequest(2)).ok());
  EXPECT_FALSE(second.Receive().ok());

  // The admitted connection is unaffected.
  EXPECT_EQ(StatusOf(Call(first, MakeStatsRequest(3))), "ok");
}

TEST_F(AuditServerTest, PollBackendServesLikeTheDefault) {
  AuditServerOptions options;
  options.poller_backend = net::PollerBackend::kPoll;
  options.num_reactors = 2;
  StartServer(options);
  auto client = Connect();
  EXPECT_EQ(StatusOf(Call(client, MakeSolveCycleRequest(1, "t"))), "ok");
  util::JsonValue doc = Call(client, MakeStatsRequest(2));
  ASSERT_EQ(StatusOf(doc), "ok");
  const util::JsonValue* server_stats = doc.Find("server");
  ASSERT_NE(server_stats, nullptr);
  auto poller = server_stats->GetString("poller");
  ASSERT_TRUE(poller.ok());
  EXPECT_EQ(*poller, "poll");
}

TEST_F(AuditServerTest, HalfClosedClientStillGetsItsResponses) {
  StartServer();
  auto client = Connect();
  // Pipeline a request, then close only the write side: the server must
  // keep the connection until the in-flight shard response is flushed.
  ASSERT_TRUE(client.Send(MakeSolveCycleRequest(1, "half-close")).ok());
  ASSERT_EQ(::shutdown(client.fd(), SHUT_WR), 0);
  auto response = client.Receive();
  ASSERT_TRUE(response.ok()) << response.status();
  auto doc = util::JsonValue::Parse(*response);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(StatusOf(*doc), "ok");
  // After the answer, the server finishes the close: EOF, not a hang.
  EXPECT_FALSE(client.Receive().ok());
}

TEST_F(AuditServerTest, GracefulStopAnswersInFlightWork) {
  StartServer();
  auto client = Connect();
  // Send a solve and request the stop immediately: whether the frame was
  // read before or after the queues closed, the drain must answer it —
  // `ok` (accepted before the drain) or `overloaded` (after) — and flush
  // the response before Run() returns. Silence (EOF) is the one forbidden
  // outcome.
  ASSERT_TRUE(client.Send(MakeSolveCycleRequest(1, "draining")).ok());
  server_->RequestStop();
  auto response = client.Receive();
  ASSERT_TRUE(response.ok()) << response.status();
  auto doc = util::JsonValue::Parse(*response);
  ASSERT_TRUE(doc.ok());
  const std::string status = StatusOf(*doc);
  EXPECT_TRUE(status == "ok" || status == "overloaded") << status;
  thread_.join();
  server_.reset();  // TearDown: nothing left to stop
}

}  // namespace
}  // namespace auditgame::server
