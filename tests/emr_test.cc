#include "data/emr.h"

#include <gtest/gtest.h>

#include "core/detection.h"

namespace auditgame::data {
namespace {

TEST(EmrRulesTest, CompositeTypesResolveFirst) {
  audit::RuleEngine rules = BuildEmrRules(0.5);
  EmrPerson employee{"e", "Smith", "D1", "A1", 1.0, 1.0};
  // Family member at the same address, 0 distance: should be type 6
  // (last name + address + neighbor), not any component type.
  EmrPerson spouse{"p", "Smith", "", "A1", 1.0, 1.0};
  auto match = rules.Match(MakeEmrAccessEvent(employee, spouse));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->first, 6);
}

TEST(EmrRulesTest, ComponentTypesResolveAlone) {
  audit::RuleEngine rules = BuildEmrRules(0.5);
  EmrPerson employee{"e", "Smith", "D1", "A1", 1.0, 1.0};

  // Same last name only, far away, different address.
  EmrPerson cousin{"p", "Smith", "", "A9", 2.5, 2.5};
  auto match = rules.Match(MakeEmrAccessEvent(employee, cousin));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->first, 0);

  // Department co-worker.
  EmrPerson coworker{"p", "Jones", "D1", "A8", 2.9, 0.1};
  match = rules.Match(MakeEmrAccessEvent(employee, coworker));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->first, 1);

  // Neighbor only.
  EmrPerson neighbor{"p", "Lee", "", "A7", 1.2, 1.2};
  match = rules.Match(MakeEmrAccessEvent(employee, neighbor));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->first, 2);

  // Unrelated -> benign.
  EmrPerson stranger{"p", "Kim", "", "A5", 2.8, 0.2};
  EXPECT_FALSE(rules.Match(MakeEmrAccessEvent(employee, stranger)).has_value());
}

TEST(EmrRulesTest, PairwiseCombinations) {
  audit::RuleEngine rules = BuildEmrRules(0.5);
  EmrPerson employee{"e", "Smith", "D1", "A1", 1.0, 1.0};

  // Last name + neighbor (different address).
  EmrPerson sibling{"p", "Smith", "", "A2", 1.1, 1.1};
  auto match = rules.Match(MakeEmrAccessEvent(employee, sibling));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->first, 4);

  // Address + neighbor (different name).
  EmrPerson housemate{"p", "Jones", "", "A1", 1.05, 1.0};
  match = rules.Match(MakeEmrAccessEvent(employee, housemate));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->first, 5);

  // Last name + address, geographically apart (synthetic geocoding allows
  // the same address id at different coordinates; see docs/DESIGN.md "Dataset substitutions").
  EmrPerson estranged{"p", "Smith", "", "A1", 2.9, 2.9};
  match = rules.Match(MakeEmrAccessEvent(employee, estranged));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->first, 3);
}

TEST(EmrWorldTest, GenerationIsDeterministic) {
  EmrConfig config;
  config.num_employees = 20;
  config.num_patients = 20;
  const auto a = GenerateEmrWorld(config);
  const auto b = GenerateEmrWorld(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->pair_types, b->pair_types);
}

TEST(EmrWorldTest, AllSevenTypesOccur) {
  const auto world = GenerateEmrWorld();
  ASSERT_TRUE(world.ok());
  std::vector<bool> seen(kEmrNumTypes, false);
  for (const auto& row : world->pair_types) {
    for (int type : row) {
      if (type >= 0) seen[static_cast<size_t>(type)] = true;
    }
  }
  for (int t = 0; t < kEmrNumTypes; ++t) EXPECT_TRUE(seen[t]) << "type " << t;
}

TEST(EmrGameTest, MatchesTableVIIIStatistics) {
  const auto instance = MakeEmrGame();
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->num_types(), kEmrNumTypes);
  for (int t = 0; t < kEmrNumTypes; ++t) {
    EXPECT_NEAR(instance->alert_distributions[t].Mean(), kEmrAlertMeans[t],
                kEmrAlertStds[t] * 0.2 + 1.0)
        << "type " << t;
  }
}

TEST(EmrGameTest, UtilityParametersApplied) {
  const auto instance = MakeEmrGame();
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->adversaries.size(), 50u);
  for (const auto& adversary : instance->adversaries) {
    EXPECT_TRUE(adversary.can_opt_out);
    EXPECT_DOUBLE_EQ(adversary.attack_probability, 1.0);
    EXPECT_EQ(adversary.victims.size(), 50u);
    for (const auto& victim : adversary.victims) {
      EXPECT_DOUBLE_EQ(victim.penalty, 15.0);
      EXPECT_DOUBLE_EQ(victim.attack_cost, 1.0);
    }
  }
}

TEST(EmrGameTest, BenefitsFollowTypeVector) {
  const auto instance = MakeEmrGame();
  ASSERT_TRUE(instance.ok());
  const std::vector<double> benefits = {10, 12, 12, 24, 25, 25, 27};
  for (const auto& adversary : instance->adversaries) {
    for (const auto& victim : adversary.victims) {
      int type = -1;
      for (int t = 0; t < kEmrNumTypes; ++t) {
        if (victim.type_probs[static_cast<size_t>(t)] > 0) type = t;
      }
      if (type >= 0) {
        EXPECT_DOUBLE_EQ(victim.benefit, benefits[static_cast<size_t>(type)]);
      } else {
        EXPECT_DOUBLE_EQ(victim.benefit, 0.0);
      }
    }
  }
}

TEST(EmrGameTest, CompilesWithLargeReduction) {
  const auto instance = MakeEmrGame();
  ASSERT_TRUE(instance.ok());
  const auto compiled = core::Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  // 2500 (e, p) pairs must collapse to at most |T|+1 victim classes per
  // group and far fewer groups than employees.
  EXPECT_LE(compiled->num_rows(), 50 * (kEmrNumTypes + 1));
  EXPECT_LT(compiled->groups.size(), 50u);
}

TEST(EmrGameTest, RejectsBadBenefitVector) {
  EmrConfig config;
  config.type_benefits = {1, 2, 3};
  EXPECT_FALSE(MakeEmrGame(config).ok());
}


TEST(EmrWorkloadTest, SimulatedLogHasExpectedShape) {
  EmrConfig config;
  config.num_employees = 20;
  config.num_patients = 20;
  const auto world = GenerateEmrWorld(config);
  ASSERT_TRUE(world.ok());
  const auto log = SimulateAccessLog(*world, /*days=*/14,
                                     /*accesses_per_employee_per_day=*/30,
                                     /*seed=*/5);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->num_types(), kEmrNumTypes);
  EXPECT_EQ(log->num_periods(), 14);
  // Some alerts must have fired overall.
  int64_t total = 0;
  for (int t = 0; t < kEmrNumTypes; ++t) {
    const auto counts = log->PeriodCounts(t);
    ASSERT_TRUE(counts.ok());
    ASSERT_EQ(counts->size(), 14u);
    for (int c : *counts) total += c;
  }
  EXPECT_GT(total, 0);
}

TEST(EmrWorkloadTest, SimulatedLogIsDeterministic) {
  EmrConfig config;
  config.num_employees = 10;
  config.num_patients = 10;
  const auto world = GenerateEmrWorld(config);
  ASSERT_TRUE(world.ok());
  const auto a = SimulateAccessLog(*world, 5, 20, 7);
  const auto b = SimulateAccessLog(*world, 5, 20, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int t = 0; t < kEmrNumTypes; ++t) {
    EXPECT_EQ(a->PeriodCounts(t).value(), b->PeriodCounts(t).value());
  }
}

TEST(EmrWorkloadTest, RejectsBadParameters) {
  const auto world = GenerateEmrWorld();
  ASSERT_TRUE(world.ok());
  EXPECT_FALSE(SimulateAccessLog(*world, 0, 10, 1).ok());
  EXPECT_FALSE(SimulateAccessLog(*world, 5, 0, 1).ok());
}

TEST(EmrWorkloadTest, GameFromLogsIsSolvable) {
  EmrConfig config;
  config.num_employees = 12;
  config.num_patients = 12;
  const auto instance = MakeEmrGameFromLogs(config, /*days=*/20,
                                            /*accesses=*/40);
  ASSERT_TRUE(instance.ok()) << instance.status();
  EXPECT_TRUE(instance->Validate().ok());
  // The learned distributions differ from Table VIII but must be usable.
  const auto compiled = core::Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = core::DetectionModel::Create(*instance, 10.0);
  ASSERT_TRUE(detection.ok());
  std::vector<double> thresholds(static_cast<size_t>(kEmrNumTypes), 2.0);
  ASSERT_TRUE(detection->SetThresholds(thresholds).ok());
  std::vector<int> ordering(static_cast<size_t>(kEmrNumTypes));
  for (int t = 0; t < kEmrNumTypes; ++t) ordering[static_cast<size_t>(t)] = t;
  const auto pal = detection->DetectionProbabilities(ordering);
  ASSERT_TRUE(pal.ok());
  for (double p : *pal) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

}  // namespace
}  // namespace auditgame::data
