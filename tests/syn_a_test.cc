#include "data/syn_a.h"

#include <gtest/gtest.h>

namespace auditgame::data {
namespace {

TEST(SynATest, MatchesTableII) {
  const auto instance = MakeSynA();
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->num_types(), 4);
  EXPECT_EQ(instance->adversaries.size(), 5u);
  // Supports are mean +/- 99.5% coverage, clipped per Table IIa.
  EXPECT_EQ(instance->alert_distributions[0].min_value(), 1);
  EXPECT_EQ(instance->alert_distributions[0].max_value(), 11);
  EXPECT_EQ(instance->alert_distributions[1].max_value(), 9);
  EXPECT_EQ(instance->alert_distributions[2].max_value(), 7);
  EXPECT_EQ(instance->alert_distributions[3].max_value(), 7);
  for (double c : instance->audit_costs) EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(SynATest, DistributionMeansApproximateTable) {
  const auto instance = MakeSynA();
  ASSERT_TRUE(instance.ok());
  const double expected[] = {6.0, 5.0, 4.0, 4.0};
  for (int t = 0; t < 4; ++t) {
    EXPECT_NEAR(instance->alert_distributions[t].Mean(), expected[t], 0.05);
  }
}

TEST(SynATest, BenignEntriesBecomeOptOut) {
  const auto instance = MakeSynA();
  ASSERT_TRUE(instance.ok());
  // Employees e1, e2, e3 (0-indexed 0..2) have "-" entries in Table IIb;
  // under the default kFreeOptOut mode they can refrain and their victim
  // lists shrink to 7.
  EXPECT_TRUE(instance->adversaries[0].can_opt_out);
  EXPECT_TRUE(instance->adversaries[1].can_opt_out);
  EXPECT_TRUE(instance->adversaries[2].can_opt_out);
  EXPECT_FALSE(instance->adversaries[3].can_opt_out);
  EXPECT_FALSE(instance->adversaries[4].can_opt_out);
  EXPECT_EQ(instance->adversaries[0].victims.size(), 7u);
  EXPECT_EQ(instance->adversaries[3].victims.size(), 8u);
}

TEST(SynATest, VictimEconomicsMatchTable) {
  const auto instance = MakeSynA();
  ASSERT_TRUE(instance.ok());
  // e1 accessing r8 triggers type 1 -> benefit 3.4.
  const core::VictimProfile& victim = instance->adversaries[0].victims.back();
  EXPECT_DOUBLE_EQ(victim.type_probs[0], 1.0);
  EXPECT_DOUBLE_EQ(victim.benefit, 3.4);
  EXPECT_DOUBLE_EQ(victim.penalty, 4.0);
  EXPECT_DOUBLE_EQ(victim.attack_cost, 0.4);
}

TEST(SynATest, CostlyAccessModeKeepsBenignVictims) {
  SynAOptions options;
  options.benign_mode = SynABenignMode::kCostlyAccess;
  const auto instance = MakeSynAVariant(options);
  ASSERT_TRUE(instance.ok());
  EXPECT_FALSE(instance->adversaries[0].can_opt_out);
  EXPECT_EQ(instance->adversaries[0].victims.size(), 8u);
  // The benign victim has zero benefit but still pays the attack cost.
  bool found_benign = false;
  for (const auto& victim : instance->adversaries[0].victims) {
    double total_prob = 0.0;
    for (double p : victim.type_probs) total_prob += p;
    if (total_prob == 0.0) {
      EXPECT_DOUBLE_EQ(victim.benefit, 0.0);
      EXPECT_DOUBLE_EQ(victim.attack_cost, 0.4);
      found_benign = true;
    }
  }
  EXPECT_TRUE(found_benign);
}

TEST(SynATest, GlobalOptOutAppliesToAll) {
  SynAOptions options;
  options.benign_mode = SynABenignMode::kGlobalOptOut;
  const auto instance = MakeSynAVariant(options);
  ASSERT_TRUE(instance.ok());
  for (const auto& adversary : instance->adversaries) {
    EXPECT_TRUE(adversary.can_opt_out);
  }
}

TEST(SynATest, GaussShiftMovesMass) {
  SynAOptions shifted;
  shifted.gauss_shift = 0.5;
  const auto base = MakeSynA();
  const auto moved = MakeSynAVariant(shifted);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(moved.ok());
  EXPECT_LT(moved->alert_distributions[0].Mean(),
            base->alert_distributions[0].Mean());
}

TEST(SynATest, InstanceValidates) {
  const auto instance = MakeSynA();
  ASSERT_TRUE(instance.ok());
  EXPECT_TRUE(instance->Validate().ok());
  const auto compiled = core::Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  // 5 employees with distinct rows -> no merges expected, but dedup of
  // victims of the same type within an employee shrinks rows.
  EXPECT_LE(compiled->num_rows(), 5 * 8);
}

}  // namespace
}  // namespace auditgame::data
