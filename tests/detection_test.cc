#include "core/detection.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "audit/executor.h"
#include "prob/count_distribution.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace auditgame::core {
namespace {

using testutil::MakeTinyGame;

TEST(DetectionModelTest, ConstantCountsAreExact) {
  // Z = [2, 2], B = 3, thresholds [2, 2]: first type audits 2 of 2
  // (Pal = 1), consumes 2; second type has budget 1 -> audits 1 of 2
  // (Pal = 0.5).
  const GameInstance instance = MakeTinyGame();
  auto model = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->SetThresholds({2.0, 2.0}).ok());
  const auto pal = model->DetectionProbabilities({0, 1});
  ASSERT_TRUE(pal.ok());
  EXPECT_NEAR((*pal)[0], 1.0, 1e-12);
  EXPECT_NEAR((*pal)[1], 0.5, 1e-12);
}

TEST(DetectionModelTest, OrderingMatters) {
  const GameInstance instance = MakeTinyGame();
  auto model = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->SetThresholds({2.0, 2.0}).ok());
  const auto pal = model->DetectionProbabilities({1, 0});
  ASSERT_TRUE(pal.ok());
  EXPECT_NEAR((*pal)[1], 1.0, 1e-12);
  EXPECT_NEAR((*pal)[0], 0.5, 1e-12);
}

TEST(DetectionModelTest, ZeroThresholdMeansNoDetection) {
  const GameInstance instance = MakeTinyGame();
  auto model = DetectionModel::Create(instance, 10.0);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->SetThresholds({0.0, 5.0}).ok());
  const auto pal = model->DetectionProbabilities({0, 1});
  ASSERT_TRUE(pal.ok());
  EXPECT_NEAR((*pal)[0], 0.0, 1e-12);
  EXPECT_NEAR((*pal)[1], 1.0, 1e-12);
}

TEST(DetectionModelTest, ZeroBudgetMeansNoDetection) {
  const GameInstance instance = MakeTinyGame();
  auto model = DetectionModel::Create(instance, 0.0);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->SetThresholds({5.0, 5.0}).ok());
  const auto pal = model->DetectionProbabilities({0, 1});
  ASSERT_TRUE(pal.ok());
  EXPECT_NEAR((*pal)[0], 0.0, 1e-12);
  EXPECT_NEAR((*pal)[1], 0.0, 1e-12);
}

TEST(DetectionModelTest, RejectsBadInput) {
  const GameInstance instance = MakeTinyGame();
  EXPECT_FALSE(DetectionModel::Create(instance, -1.0).ok());
  auto model = DetectionModel::Create(instance, 5.0);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->SetThresholds({1.0}).ok());
  EXPECT_FALSE(model->SetThresholds({-1.0, 1.0}).ok());
  ASSERT_TRUE(model->SetThresholds({1.0, 1.0}).ok());
  EXPECT_FALSE(model->DetectionProbabilities({0}).ok());
  EXPECT_FALSE(model->DetectionProbabilities({0, 0}).ok());
  EXPECT_FALSE(model->DetectionProbabilities({0, 2}).ok());
}

// The exact (convolution) estimator must agree with direct enumeration of
// the joint support via the audit executor.
TEST(DetectionModelTest, ExactMatchesJointEnumeration) {
  GameInstance instance = MakeTinyGame();
  instance.alert_distributions = {
      *prob::CountDistribution::DiscretizedGaussian(3.0, 1.0, 1, 5),
      *prob::CountDistribution::DiscretizedGaussian(2.0, 1.0, 1, 4)};
  const double budget = 4.0;
  const std::vector<double> thresholds = {3.0, 2.0};
  const std::vector<int> ordering = {0, 1};

  auto model = DetectionModel::Create(instance, budget);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->SetThresholds(thresholds).ok());
  const auto pal = model->DetectionProbabilities(ordering);
  ASSERT_TRUE(pal.ok());

  // Enumerate the joint support, computing E[n_t / Z_t] directly from the
  // audit executor (independent implementation of the recourse semantics).
  audit::AuditConfiguration config;
  config.ordering = ordering;
  config.thresholds = thresholds;
  config.audit_costs = instance.audit_costs;
  config.budget = budget;
  std::vector<double> expected(2, 0.0);
  for (int z0 = 1; z0 <= 5; ++z0) {
    for (int z1 = 1; z1 <= 4; ++z1) {
      const double p = instance.alert_distributions[0].Pmf(z0) *
                       instance.alert_distributions[1].Pmf(z1);
      const auto audited = audit::AuditedCounts(config, {z0, z1});
      ASSERT_TRUE(audited.ok());
      expected[0] += p * static_cast<double>((*audited)[0]) / z0;
      expected[1] += p * static_cast<double>((*audited)[1]) / z1;
    }
  }
  EXPECT_NEAR((*pal)[0], expected[0], 1e-9);
  EXPECT_NEAR((*pal)[1], expected[1], 1e-9);
}

TEST(DetectionModelTest, MonteCarloConvergesToExact) {
  GameInstance instance = MakeTinyGame();
  instance.alert_distributions = {
      *prob::CountDistribution::DiscretizedGaussian(4.0, 1.5, 1, 8),
      *prob::CountDistribution::DiscretizedGaussian(3.0, 1.0, 1, 6)};
  const std::vector<double> thresholds = {3.0, 3.0};

  auto exact = DetectionModel::Create(instance, 5.0);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(exact->SetThresholds(thresholds).ok());
  const auto exact_pal = exact->DetectionProbabilities({0, 1});
  ASSERT_TRUE(exact_pal.ok());

  DetectionModel::Options mc_options;
  mc_options.mode = DetectionModel::Mode::kMonteCarlo;
  mc_options.mc_samples = 200000;
  auto mc = DetectionModel::Create(instance, 5.0, mc_options);
  ASSERT_TRUE(mc.ok());
  ASSERT_TRUE(mc->SetThresholds(thresholds).ok());
  const auto mc_pal = mc->DetectionProbabilities({0, 1});
  ASSERT_TRUE(mc_pal.ok());

  EXPECT_NEAR((*mc_pal)[0], (*exact_pal)[0], 0.005);
  EXPECT_NEAR((*mc_pal)[1], (*exact_pal)[1], 0.005);
}

TEST(DetectionModelTest, PrefixApiMatchesFullEvaluation) {
  GameInstance instance = MakeTinyGame();
  instance.alert_distributions = {
      *prob::CountDistribution::DiscretizedGaussian(4.0, 1.5, 1, 8),
      *prob::CountDistribution::DiscretizedGaussian(3.0, 1.0, 1, 6)};
  auto model = DetectionModel::Create(instance, 5.0);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->SetThresholds({3.0, 3.0}).ok());
  const auto full = model->DetectionProbabilities({1, 0});
  ASSERT_TRUE(full.ok());

  DetectionModel::Prefix prefix = model->EmptyPrefix();
  const double pal1 = model->PalGivenPrefix(prefix, 1);
  model->ExtendPrefix(prefix, 1);
  const double pal0 = model->PalGivenPrefix(prefix, 0);
  EXPECT_NEAR(pal1, (*full)[1], 1e-12);
  EXPECT_NEAR(pal0, (*full)[0], 1e-12);
}

TEST(DetectionModelTest, MorePrefixConsumptionLowersPal) {
  const GameInstance instance = MakeTinyGame();
  auto model = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->SetThresholds({2.0, 2.0}).ok());
  DetectionModel::Prefix empty = model->EmptyPrefix();
  const double before = model->PalGivenPrefix(empty, 1);
  model->ExtendPrefix(empty, 0);
  const double after = model->PalGivenPrefix(empty, 1);
  EXPECT_GT(before, after);
}

TEST(DetectionModelTest, InclusiveSemanticsLowersPal) {
  const GameInstance instance = MakeTinyGame();
  DetectionModel::Options inclusive;
  inclusive.semantics = DetectionModel::Semantics::kInclusiveAttack;
  auto a = DetectionModel::Create(instance, 3.0);
  auto b = DetectionModel::Create(instance, 3.0, inclusive);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a->SetThresholds({2.0, 2.0}).ok());
  ASSERT_TRUE(b->SetThresholds({2.0, 2.0}).ok());
  const auto pal_a = a->DetectionProbabilities({0, 1});
  const auto pal_b = b->DetectionProbabilities({0, 1});
  ASSERT_TRUE(pal_a.ok());
  ASSERT_TRUE(pal_b.ok());
  // Bin of 2 + attack = 3, capacity 2 -> 2/3 < 1; capacity 1 -> 1/3 < 1/2.
  EXPECT_NEAR((*pal_b)[0], 2.0 / 3, 1e-12);
  EXPECT_NEAR((*pal_b)[1], 1.0 / 3, 1e-12);
  EXPECT_LT((*pal_b)[0], (*pal_a)[0]);
  EXPECT_LT((*pal_b)[1], (*pal_a)[1]);
}

TEST(DetectionModelTest, ReservedConsumptionStarvesLaterTypes) {
  // Type 0: threshold 4 but only 2 alerts arrive (constant). Realized
  // consumption leaves budget for type 1; reserved consumption does not.
  GameInstance instance = MakeTinyGame();
  auto realized = DetectionModel::Create(instance, 5.0);
  DetectionModel::Options opts;
  opts.consumption = DetectionModel::Consumption::kReserved;
  auto reserved = DetectionModel::Create(instance, 5.0, opts);
  ASSERT_TRUE(realized.ok());
  ASSERT_TRUE(reserved.ok());
  ASSERT_TRUE(realized->SetThresholds({4.0, 2.0}).ok());
  ASSERT_TRUE(reserved->SetThresholds({4.0, 2.0}).ok());
  const auto pal_realized = realized->DetectionProbabilities({0, 1});
  const auto pal_reserved = reserved->DetectionProbabilities({0, 1});
  ASSERT_TRUE(pal_realized.ok());
  ASSERT_TRUE(pal_reserved.ok());
  // Realized: consumed min(4, 2) = 2 -> 3 left -> type 1 audits 2/2.
  EXPECT_NEAR((*pal_realized)[1], 1.0, 1e-12);
  // Reserved: consumed 4 -> 1 left -> type 1 audits 1/2.
  EXPECT_NEAR((*pal_reserved)[1], 0.5, 1e-12);
}

// Property sweep: for any ordering and thresholds, Pal values are in [0,1]
// and monotonically non-increasing when the budget shrinks.
class DetectionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DetectionPropertyTest, BudgetMonotonicity) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  GameInstance instance = MakeTinyGame();
  instance.type_names = {"a", "b", "c"};
  instance.audit_costs = {1.0, 1.0, 1.0};
  instance.alert_distributions.clear();
  for (int t = 0; t < 3; ++t) {
    const int mean = 2 + static_cast<int>(rng.UniformInt(4));
    instance.alert_distributions.push_back(
        *prob::CountDistribution::DiscretizedGaussian(
            mean, 1.0 + rng.Uniform(), 1, mean + 4));
  }
  instance.adversaries[0].victims[0].type_probs = {1.0, 0.0, 0.0};
  instance.adversaries[0].victims[1].type_probs = {0.0, 1.0, 0.0};

  std::vector<double> thresholds(3);
  for (auto& b : thresholds) b = static_cast<double>(rng.UniformInt(6));
  std::vector<int> ordering = {0, 1, 2};
  rng.Shuffle(ordering);

  std::vector<double> previous(3, 0.0);
  for (double budget : {0.0, 2.0, 4.0, 8.0, 16.0}) {
    auto model = DetectionModel::Create(instance, budget);
    ASSERT_TRUE(model.ok());
    ASSERT_TRUE(model->SetThresholds(thresholds).ok());
    const auto pal = model->DetectionProbabilities(ordering);
    ASSERT_TRUE(pal.ok());
    for (int t = 0; t < 3; ++t) {
      EXPECT_GE((*pal)[t], previous[t] - 1e-9)
          << "budget " << budget << " type " << t;
      EXPECT_GE((*pal)[t], -1e-12);
      EXPECT_LE((*pal)[t], 1.0 + 1e-12);
      previous[t] = (*pal)[t];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, DetectionPropertyTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace auditgame::core
