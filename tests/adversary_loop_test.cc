// Closed-loop tests for the adversary subsystem (adversary/loop.h): the
// in-process Stackelberg loop tracks a best-responding attacker within the
// exact-solver floor, the remote loop (FrameClient against a live
// audit_server) agrees with the in-process loop on the same instance and
// attacker, and the observe_policy protocol extension only ships detection
// probabilities when asked.
#include "adversary/loop.h"

#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "adversary/attacker.h"
#include "gtest/gtest.h"
#include "net/client.h"
#include "scenario/generator.h"
#include "server/audit_server.h"
#include "server/protocol.h"
#include "util/json.h"

namespace auditgame::adversary {
namespace {

core::GameInstance MakeInstance() {
  auto spec = scenario::SpecByName("uniform");
  EXPECT_TRUE(spec.ok());
  spec->num_types = 4;
  auto instance = scenario::Generate(*spec);
  EXPECT_TRUE(instance.ok());
  return std::move(*instance);
}

DefenderConfig MakeConfig() {
  DefenderConfig config;
  config.budget = 6.0;
  config.solver_options.ishm.step_size = 0.25;
  config.warm_start_max_drift = 0.25;
  return config;
}

std::unique_ptr<Attacker> MakeBestResponder(
    const core::GameInstance& instance) {
  auto economics = DeriveEconomics(instance);
  EXPECT_TRUE(economics.ok());
  AttackerSpec spec;
  spec.kind = AttackerKind::kBestResponse;
  spec.attack_rate = 0.6;
  auto attacker = MakeAttacker(spec, instance.alert_distributions,
                               *std::move(economics));
  EXPECT_TRUE(attacker.ok()) << attacker.status();
  return std::move(*attacker);
}

util::StatusOr<LoopReport> RunInProcessLoop(const core::GameInstance& instance,
                                            int cycles) {
  const DefenderConfig config = MakeConfig();
  auto attacker = MakeBestResponder(instance);
  InProcessDefender defender(instance, config);
  auto loop = AdversaryLoop::Create(instance, config, &defender,
                                    attacker.get());
  if (!loop.ok()) return loop.status();
  LoopSpec spec;
  spec.cycles = cycles;
  return loop->Run(spec);
}

TEST(AdversaryLoopTest, InProcessLoopStaysAtTheExactSolverFloor) {
  const core::GameInstance instance = MakeInstance();
  auto report = RunInProcessLoop(instance, 8);
  ASSERT_TRUE(report.ok()) << report.status();

  ASSERT_EQ(report->cycles.size(), 8u);
  EXPECT_EQ(report->cache_hits + report->warm_solves + report->cold_solves, 8);
  EXPECT_GE(report->cold_solves, 1);  // cycle 1 always solves from scratch

  // The in-process defender re-solves exactly whenever the drift gate
  // trips and serves exact cached solutions otherwise, so the served policy
  // is optimal for its cycle's distributions: regret and exploitability sit
  // at the oracle floor, and the within-2x tracking gate holds trivially.
  EXPECT_LE(report->regret_gap_max, 1e-9);
  EXPECT_LE(report->exploitability_gap_max, 1e-9);
  EXPECT_TRUE(report->tracking_within_2x);
  EXPECT_EQ(report->tracking_lag_max_cycles, 0);

  for (const CycleMetrics& m : report->cycles) {
    EXPECT_TRUE(m.source == "cache" || m.source == "warm" ||
                m.source == "cold")
        << m.source;
    EXPECT_GE(m.best_attack_utility, 0.0);  // clamped at "refrain"
  }
}

TEST(AdversaryLoopTest, RejectsMissingPieces) {
  const core::GameInstance instance = MakeInstance();
  const DefenderConfig config = MakeConfig();
  auto attacker = MakeBestResponder(instance);
  InProcessDefender defender(instance, config);
  EXPECT_FALSE(
      AdversaryLoop::Create(instance, config, nullptr, attacker.get()).ok());
  EXPECT_FALSE(
      AdversaryLoop::Create(instance, config, &defender, nullptr).ok());

  auto loop =
      AdversaryLoop::Create(instance, config, &defender, attacker.get());
  ASSERT_TRUE(loop.ok());
  LoopSpec spec;
  spec.cycles = 0;
  EXPECT_FALSE(loop->Run(spec).ok());
}

class RemoteLoopTest : public ::testing::Test {
 protected:
  void StartServer(core::GameInstance instance) {
    server::AuditServerOptions options;
    options.port = 0;  // ephemeral
    options.service.budgets = {6.0};
    options.service.solver_options.ishm.step_size = 0.25;
    options.service.num_threads = 1;
    server_ = std::make_unique<server::AuditServer>(std::move(instance),
                                                    options);
    ASSERT_TRUE(server_->Start().ok());
    thread_ = std::thread([this] {
      util::Status run = server_->Run();
      EXPECT_TRUE(run.ok()) << run;
    });
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->RequestStop();
      if (thread_.joinable()) thread_.join();
    }
  }

  net::FrameClient Connect() {
    auto client =
        net::FrameClient::Connect("127.0.0.1", server_->port(), 5000);
    EXPECT_TRUE(client.ok()) << client.status();
    EXPECT_TRUE(client->SetReceiveTimeout(30000).ok());
    return std::move(client).value();
  }

  std::unique_ptr<server::AuditServer> server_;
  std::thread thread_;
};

TEST_F(RemoteLoopTest, RemoteLoopAgreesWithInProcess) {
  const core::GameInstance instance = MakeInstance();
  StartServer(instance);

  const int kCycles = 6;
  auto local = RunInProcessLoop(instance, kCycles);
  ASSERT_TRUE(local.ok()) << local.status();

  auto client = Connect();
  const DefenderConfig config = MakeConfig();
  auto attacker = MakeBestResponder(instance);
  RemoteDefender defender(&client, "loop-tenant");
  auto loop =
      AdversaryLoop::Create(instance, config, &defender, attacker.get());
  ASSERT_TRUE(loop.ok()) << loop.status();
  LoopSpec spec;
  spec.cycles = kCycles;
  auto remote = loop->Run(spec);
  ASSERT_TRUE(remote.ok()) << remote.status();

  // The server holds a JSON-roundtripped copy of the ingested pmfs, so the
  // two runs agree to ULP-level noise (~1e-15), not bit for bit; 1e-6 is
  // the documented loop contract. The cache/warm/cold source sequence,
  // being drift-gated on the same thresholds, matches exactly.
  ASSERT_EQ(remote->cycles.size(), local->cycles.size());
  for (size_t i = 0; i < remote->cycles.size(); ++i) {
    const CycleMetrics& r = remote->cycles[i];
    const CycleMetrics& l = local->cycles[i];
    EXPECT_EQ(r.source, l.source) << "cycle " << i + 1;
    EXPECT_NEAR(r.served_loss, l.served_loss, 1e-6) << "cycle " << i + 1;
    EXPECT_NEAR(r.best_attack_utility, l.best_attack_utility, 1e-6)
        << "cycle " << i + 1;
  }
  EXPECT_NEAR(remote->served_loss_mean, local->served_loss_mean, 1e-6);
  EXPECT_NEAR(remote->oracle_loss_mean, local->oracle_loss_mean, 1e-6);
  EXPECT_LE(remote->exploitability_gap_max, 1e-6);
  EXPECT_TRUE(remote->tracking_within_2x);
}

TEST_F(RemoteLoopTest, DetectionProbsShipOnlyWhenObserved) {
  StartServer(MakeInstance());
  auto client = Connect();

  auto Call = [&](const std::string& payload) {
    auto response = client.Call(payload);
    EXPECT_TRUE(response.ok()) << response.status();
    auto doc = util::JsonValue::Parse(*response);
    EXPECT_TRUE(doc.ok()) << doc.status();
    return *std::move(doc);
  };

  // Plain solve: no detection payload (the wire stays slim by default).
  util::JsonValue doc = Call(server::MakeSolveCycleRequest(1, "acme"));
  const util::JsonValue* policies = doc.Find("policies");
  ASSERT_NE(policies, nullptr);
  ASSERT_TRUE(policies->is_array());
  ASSERT_EQ(policies->as_array().size(), 1u);
  EXPECT_EQ(policies->as_array()[0].Find("detection_probs"), nullptr);

  // observe_policy: the per-type mixed detection vector rides along.
  doc = Call(server::MakeSolveCycleRequest(2, "acme",
                                           /*observe_policy=*/true));
  auto reply = server::ParseSolveCycleReply(doc);
  ASSERT_TRUE(reply.ok()) << reply.status();
  ASSERT_EQ(reply->policies.size(), 1u);
  const std::vector<double>& pal = reply->policies[0].detection_probs;
  ASSERT_EQ(pal.size(), 4u);
  for (double p : pal) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

}  // namespace
}  // namespace auditgame::adversary
