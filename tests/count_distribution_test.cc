#include "prob/count_distribution.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace auditgame::prob {
namespace {

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.96), 0.0249979, 1e-6);
}

TEST(NormalTest, QuantileInvertsCdf) {
  for (double p : {0.005, 0.1, 0.5, 0.9, 0.9975}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-9);
  }
}

TEST(CountDistributionTest, FromPmfNormalizes) {
  auto dist = CountDistribution::FromPmf(2, {1.0, 1.0, 2.0});
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->min_value(), 2);
  EXPECT_EQ(dist->max_value(), 4);
  EXPECT_NEAR(dist->Pmf(2), 0.25, 1e-12);
  EXPECT_NEAR(dist->Pmf(4), 0.5, 1e-12);
  EXPECT_NEAR(dist->Pmf(5), 0.0, 1e-12);
  EXPECT_NEAR(dist->Cdf(3), 0.5, 1e-12);
  EXPECT_NEAR(dist->Cdf(100), 1.0, 1e-12);
  EXPECT_NEAR(dist->Cdf(1), 0.0, 1e-12);
}

TEST(CountDistributionTest, FromPmfRejectsBadInput) {
  EXPECT_FALSE(CountDistribution::FromPmf(-1, {1.0}).ok());
  EXPECT_FALSE(CountDistribution::FromPmf(0, {}).ok());
  EXPECT_FALSE(CountDistribution::FromPmf(0, {-1.0, 2.0}).ok());
  EXPECT_FALSE(CountDistribution::FromPmf(0, {0.0, 0.0}).ok());
}

TEST(CountDistributionTest, DiscretizedGaussianMatchesSynA) {
  // Syn A type 1: Gaussian(6, 2) on [1, 11].
  auto dist = CountDistribution::DiscretizedGaussian(6.0, 2.0, 1, 11);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->support_size(), 11);
  // Symmetric support around the mean -> mean preserved.
  EXPECT_NEAR(dist->Mean(), 6.0, 1e-9);
  // The mode is at the mean.
  for (int z = 1; z <= 11; ++z) EXPECT_LE(dist->Pmf(z), dist->Pmf(6) + 1e-12);
  double total = 0.0;
  for (int z = 1; z <= 11; ++z) total += dist->Pmf(z);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(CountDistributionTest, GaussianVarianceApproximatelyMatches) {
  auto dist = CountDistribution::DiscretizedGaussian(50.0, 5.0, 20, 80);
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR(dist->Mean(), 50.0, 1e-6);
  // Discretization adds ~1/12 of variance; truncation removes some tails.
  EXPECT_NEAR(dist->Variance(), 25.0, 0.3);
}

TEST(CountDistributionTest, CoverageConstructorClipsAtZero) {
  auto dist = CountDistribution::DiscretizedGaussianWithCoverage(2.0, 5.0, 0.995);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->min_value(), 0);
  EXPECT_GE(dist->max_value(), 10);
}

TEST(CountDistributionTest, CoverageHalfWidthMatchesPaper) {
  // Syn A: mean 6, std 2, 99.5% coverage -> +/-5 (paper Table IIa says 5,
  // ceil(2.81 * 2) = 6; the published band is z=2.5 ... verify we cover at
  // least the published +/-5).
  auto dist = CountDistribution::DiscretizedGaussianWithCoverage(6.0, 2.0, 0.995);
  ASSERT_TRUE(dist.ok());
  EXPECT_LE(dist->min_value(), 1);
  EXPECT_GE(dist->max_value(), 11);
}

TEST(CountDistributionTest, UpperBoundIsMonotoneInCoverage) {
  auto dist = CountDistribution::DiscretizedGaussian(10.0, 3.0, 0, 25);
  ASSERT_TRUE(dist.ok());
  EXPECT_LE(dist->UpperBound(0.5), dist->UpperBound(0.9));
  EXPECT_LE(dist->UpperBound(0.9), dist->UpperBound(0.9995));
  EXPECT_EQ(dist->UpperBound(0.99999999), dist->max_value());
}

TEST(CountDistributionTest, TruncatedPoissonMoments) {
  auto dist = CountDistribution::TruncatedPoisson(4.0);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->min_value(), 0);
  EXPECT_NEAR(dist->Mean(), 4.0, 0.02);
  EXPECT_NEAR(dist->Variance(), 4.0, 0.15);
}

TEST(CountDistributionTest, FromSamplesMatchesEmpirical) {
  auto dist = CountDistribution::FromSamples({3, 3, 4, 5, 5, 5});
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->min_value(), 3);
  EXPECT_EQ(dist->max_value(), 5);
  EXPECT_NEAR(dist->Pmf(3), 2.0 / 6, 1e-12);
  EXPECT_NEAR(dist->Pmf(4), 1.0 / 6, 1e-12);
  EXPECT_NEAR(dist->Pmf(5), 3.0 / 6, 1e-12);
  EXPECT_FALSE(CountDistribution::FromSamples({}).ok());
  EXPECT_FALSE(CountDistribution::FromSamples({-1}).ok());
}

TEST(CountDistributionTest, ConstantDistribution) {
  const CountDistribution dist = CountDistribution::Constant(7);
  EXPECT_EQ(dist.min_value(), 7);
  EXPECT_EQ(dist.max_value(), 7);
  EXPECT_NEAR(dist.Mean(), 7.0, 1e-12);
  EXPECT_NEAR(dist.Variance(), 0.0, 1e-12);
  util::Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(dist.Sample(rng), 7);
}

TEST(CountDistributionTest, SamplingMatchesPmf) {
  auto dist = CountDistribution::FromPmf(0, {0.2, 0.5, 0.3});
  ASSERT_TRUE(dist.ok());
  util::Rng rng(99);
  std::vector<int> histogram(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++histogram[static_cast<size_t>(dist->Sample(rng))];
  EXPECT_NEAR(histogram[0] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(histogram[1] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(histogram[2] / static_cast<double>(n), 0.3, 0.01);
}

TEST(CountDistributionTest, SampleJointIsIndependentPerType) {
  std::vector<CountDistribution> dists = {CountDistribution::Constant(2),
                                          CountDistribution::Constant(9)};
  util::Rng rng(3);
  const std::vector<int> z = SampleJoint(dists, rng);
  ASSERT_EQ(z.size(), 2u);
  EXPECT_EQ(z[0], 2);
  EXPECT_EQ(z[1], 9);
}

// Property sweep: discretized Gaussians over a range of parameters keep
// total mass 1 and mean within the truncation window.
class GaussianSweepTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(GaussianSweepTest, MassAndMeanSane) {
  const double mean = std::get<0>(GetParam());
  const double stddev = std::get<1>(GetParam());
  auto dist =
      CountDistribution::DiscretizedGaussianWithCoverage(mean, stddev, 0.995);
  ASSERT_TRUE(dist.ok());
  double total = 0.0;
  for (int z = dist->min_value(); z <= dist->max_value(); ++z) {
    total += dist->Pmf(z);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(dist->Mean(), mean, stddev + 1.0);
  EXPECT_GE(dist->min_value(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Params, GaussianSweepTest,
    ::testing::Combine(::testing::Values(1.0, 6.0, 32.18, 113.89, 370.04),
                       ::testing::Values(0.5, 2.0, 15.81, 80.44)));

}  // namespace
}  // namespace auditgame::prob
