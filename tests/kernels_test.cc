#include "math/kernels.h"

#include <cmath>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace auditgame::math {
namespace {

// Mixed-magnitude values so reassociation would actually change bits: a
// reduction that merely "approximately agrees" across backends fails these
// tests, which compare bit patterns.
std::vector<double> RandomVector(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> mantissa(-1.0, 1.0);
  std::uniform_int_distribution<int> exponent(-12, 12);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = std::ldexp(mantissa(rng), exponent(rng));
  }
  return v;
}

bool SameBits(double a, double b) {
  uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

// Restores whatever backend was active when the test started.
class KernelsTest : public ::testing::Test {
 protected:
  void TearDown() override { SetBackend(saved_); }
  Backend saved_ = ActiveBackend();
};

// The canonical blocked order, written out the slow way.
double ReferenceBlockedSum(const std::vector<double>& terms) {
  double lane[kBlockLanes] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < terms.size(); ++i) lane[i & 3] += terms[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

TEST_F(KernelsTest, SumFollowsCanonicalBlockedOrder) {
  for (Backend backend : {Backend::kScalar, Backend::kSimd}) {
    if (!SetBackend(backend)) continue;
    for (size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 63u, 64u, 257u, 1000u}) {
      const std::vector<double> x = RandomVector(n, 11 + n);
      EXPECT_TRUE(SameBits(Sum(x.data(), n), ReferenceBlockedSum(x)))
          << "backend=" << BackendName() << " n=" << n;
    }
  }
}

TEST_F(KernelsTest, ReductionsAreBitIdenticalAcrossBackends) {
  if (!SimdAvailable()) {
    GTEST_SKIP() << "SIMD backend compiled out or unsupported";
  }
  for (size_t n : {1u, 3u, 4u, 6u, 8u, 17u, 64u, 255u, 1024u, 4097u}) {
    const std::vector<double> x = RandomVector(n, 101 + n);
    const std::vector<double> y = RandomVector(n, 202 + n);

    ASSERT_TRUE(SetBackend(Backend::kScalar));
    const double sum_s = Sum(x.data(), n);
    const double dot_s = Dot(x.data(), y.data(), n);
    const double tvd_s = AbsDiffSum(x.data(), y.data(), n);

    ASSERT_TRUE(SetBackend(Backend::kSimd));
    EXPECT_TRUE(SameBits(Sum(x.data(), n), sum_s)) << "n=" << n;
    EXPECT_TRUE(SameBits(Dot(x.data(), y.data(), n), dot_s)) << "n=" << n;
    EXPECT_TRUE(SameBits(AbsDiffSum(x.data(), y.data(), n), tvd_s))
        << "n=" << n;
  }
}

TEST_F(KernelsTest, ElementwiseKernelsAreBitIdenticalAcrossBackends) {
  if (!SimdAvailable()) {
    GTEST_SKIP() << "SIMD backend compiled out or unsupported";
  }
  for (size_t n : {1u, 2u, 3u, 5u, 8u, 31u, 200u}) {
    const std::vector<double> x = RandomVector(n, 7 + n);
    const std::vector<double> y0 = RandomVector(n, 77 + n);
    const double a = 0.371;

    ASSERT_TRUE(SetBackend(Backend::kScalar));
    std::vector<double> axpy_s = y0, add_s = y0, scale_s = y0;
    Axpy(a, x.data(), axpy_s.data(), n);
    Add(x.data(), add_s.data(), n);
    Scale(a, scale_s.data(), n);

    ASSERT_TRUE(SetBackend(Backend::kSimd));
    std::vector<double> axpy_v = y0, add_v = y0, scale_v = y0;
    Axpy(a, x.data(), axpy_v.data(), n);
    Add(x.data(), add_v.data(), n);
    Scale(a, scale_v.data(), n);

    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(SameBits(axpy_s[i], axpy_v[i])) << "n=" << n << " i=" << i;
      EXPECT_TRUE(SameBits(add_s[i], add_v[i])) << "n=" << n << " i=" << i;
      EXPECT_TRUE(SameBits(scale_s[i], scale_v[i])) << "n=" << n << " i=" << i;
    }
  }
}

TEST_F(KernelsTest, ConvolveShiftSaturateMatchesDefinition) {
  for (Backend backend : {Backend::kScalar, Backend::kSimd}) {
    if (!SetBackend(backend)) continue;
    for (size_t n : {1u, 4u, 9u, 33u, 128u}) {
      for (size_t shift : {size_t{0}, size_t{1}, n / 2, n - 1, n}) {
        const std::vector<double> p = RandomVector(n, 5 + n + shift);
        const std::vector<double> base = RandomVector(n, 55 + n + shift);
        const double q = 0.625;

        // Reference: element-wise adds over the non-saturating range, then
        // one blocked-order reduction of the saturating tail.
        std::vector<double> expected = base;
        const size_t dense = n - shift;
        for (size_t s = 0; s < dense; ++s) expected[s + shift] += q * p[s];
        std::vector<double> tail_terms;
        for (size_t s = dense; s < n; ++s) tail_terms.push_back(q * p[s]);
        expected[n - 1] += ReferenceBlockedSum(tail_terms);

        std::vector<double> next = base;
        ConvolveShiftSaturate(p.data(), n, shift, q, next.data());
        for (size_t i = 0; i < n; ++i) {
          EXPECT_TRUE(SameBits(next[i], expected[i]))
              << "backend=" << BackendName() << " n=" << n
              << " shift=" << shift << " i=" << i;
        }
      }
    }
  }
}

TEST_F(KernelsTest, SparseDotGathersAgainstDenseVector) {
  const std::vector<double> y = RandomVector(32, 9);
  const std::vector<std::pair<int, double>> terms = {
      {3, 0.5}, {0, -1.25}, {31, 2.0}, {3, 0.25}};
  double expected = 0.0;
  for (const auto& [index, weight] : terms) expected += weight * y[index];
  for (Backend backend : {Backend::kScalar, Backend::kSimd}) {
    if (!SetBackend(backend)) continue;
    EXPECT_TRUE(
        SameBits(SparseDot(terms.data(), terms.size(), y.data()), expected))
        << "backend=" << BackendName();
  }
}

TEST_F(KernelsTest, BlockedAccumulatorMatchesSumBitwise) {
  for (Backend backend : {Backend::kScalar, Backend::kSimd}) {
    if (!SetBackend(backend)) continue;
    for (size_t n : {0u, 3u, 4u, 100u, 1001u}) {
      const std::vector<double> x = RandomVector(n, 31 + n);
      BlockedAccumulator acc;
      for (double v : x) acc.Add(v);
      EXPECT_TRUE(SameBits(acc.Total(), Sum(x.data(), n)))
          << "backend=" << BackendName() << " n=" << n;
    }
  }
}

TEST_F(KernelsTest, BackendSwitchingReportsConsistently) {
  ASSERT_TRUE(SetBackend(Backend::kScalar));
  EXPECT_EQ(ActiveBackend(), Backend::kScalar);
  EXPECT_STREQ(BackendName(), "scalar");

  const bool simd_ok = SetBackend(Backend::kSimd);
  EXPECT_EQ(simd_ok, SimdAvailable());
  if (simd_ok) {
    EXPECT_EQ(ActiveBackend(), Backend::kSimd);
    const std::string name = BackendName();
    EXPECT_TRUE(name == "sse2" || name == "avx2") << name;
  } else {
    EXPECT_EQ(ActiveBackend(), Backend::kScalar);
  }
}

}  // namespace
}  // namespace auditgame::math
