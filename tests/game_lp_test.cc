#include "core/game_lp.h"

#include <gtest/gtest.h>

#include "core/master_lp.h"
#include "tests/test_util.h"

namespace auditgame::core {
namespace {

using testutil::MakeMediumGame;
using testutil::MakeTinyGame;

TEST(GameLpTest, SingleOrderingIsPureStrategy) {
  const GameInstance instance = MakeTinyGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  ASSERT_TRUE(detection->SetThresholds({2.0, 2.0}).ok());
  const auto solution =
      SolveRestrictedGameLp(*compiled, *detection, {{0, 1}});
  ASSERT_TRUE(solution.ok());
  EXPECT_NEAR(solution->ordering_probs[0], 1.0, 1e-9);
  // Matches the hand-computed best response of policy_test: loss 1.
  EXPECT_NEAR(solution->objective, 1.0, 1e-9);
}

TEST(GameLpTest, TwoOrderingsAllowMixing) {
  const GameInstance instance = MakeTinyGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  ASSERT_TRUE(detection->SetThresholds({2.0, 2.0}).ok());
  const auto solution =
      SolveRestrictedGameLp(*compiled, *detection, {{0, 1}, {1, 0}});
  ASSERT_TRUE(solution.ok());
  // With opt-out the auditor can deter completely (see policy_test).
  EXPECT_NEAR(solution->objective, 0.0, 1e-9);
  EXPECT_NEAR(solution->ordering_probs[0] + solution->ordering_probs[1], 1.0,
              1e-9);
}

TEST(GameLpTest, ObjectiveNeverWorseWithMoreColumns) {
  const GameInstance instance = MakeMediumGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 5.0);
  ASSERT_TRUE(detection.ok());
  ASSERT_TRUE(detection->SetThresholds({3.0, 3.0, 3.0}).ok());
  const auto restricted =
      SolveRestrictedGameLp(*compiled, *detection, {{0, 1, 2}});
  const auto wider = SolveRestrictedGameLp(
      *compiled, *detection, {{0, 1, 2}, {2, 1, 0}, {1, 2, 0}});
  ASSERT_TRUE(restricted.ok());
  ASSERT_TRUE(wider.ok());
  EXPECT_LE(wider->objective, restricted->objective + 1e-9);
}

TEST(GameLpTest, DualsHaveExpectedStructure) {
  const GameInstance instance = MakeTinyGame(/*can_opt_out=*/false);
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  ASSERT_TRUE(detection->SetThresholds({2.0, 2.0}).ok());
  const auto solution =
      SolveRestrictedGameLp(*compiled, *detection, {{0, 1}, {1, 0}});
  ASSERT_TRUE(solution.ok());
  // The victim-row duals are the adversary's mixed best response: they are
  // non-negative and, per group, sum to the group weight.
  double dual_total = 0.0;
  for (double y : solution->victim_duals[0]) {
    EXPECT_GE(y, -1e-9);
    dual_total += y;
  }
  EXPECT_NEAR(dual_total, compiled->groups[0].weight, 1e-6);
}

TEST(GameLpTest, EmptyOrderingSetRejected) {
  const GameInstance instance = MakeTinyGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  ASSERT_TRUE(detection->SetThresholds({2.0, 2.0}).ok());
  EXPECT_FALSE(SolveRestrictedGameLp(*compiled, *detection, {}).ok());
}

TEST(FullLpTest, MatchesManualMixOnTinyGame) {
  const GameInstance instance = MakeTinyGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  const auto full = SolveFullGameLp(*compiled, *detection, {2.0, 2.0});
  ASSERT_TRUE(full.ok());
  EXPECT_NEAR(full->objective, 0.0, 1e-9);
  EXPECT_TRUE(full->policy.Validate(2).ok());
}

// The incremental master, growing one column per Solve(), must track the
// one-shot wrapper exactly: same objectives, same duals, and warm-started
// re-solves that skip phase 1 after the first.
TEST(RestrictedMasterLpTest, IncrementalMatchesOneShotAtEveryPrefix) {
  const GameInstance instance = MakeMediumGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 5.0);
  ASSERT_TRUE(detection.ok());
  ASSERT_TRUE(detection->SetThresholds({3.0, 3.0, 3.0}).ok());

  const std::vector<std::vector<int>> orderings = {
      {0, 1, 2}, {2, 1, 0}, {1, 0, 2}, {0, 2, 1}, {2, 0, 1}, {1, 2, 0}};
  RestrictedMasterLp master(*compiled, *detection);
  std::vector<std::vector<int>> prefix;
  for (const auto& ordering : orderings) {
    ASSERT_TRUE(master.AddOrdering(ordering).ok());
    prefix.push_back(ordering);
    const auto incremental = master.Solve();
    const auto one_shot = SolveRestrictedGameLp(*compiled, *detection, prefix);
    ASSERT_TRUE(incremental.ok());
    ASSERT_TRUE(one_shot.ok());
    EXPECT_NEAR(incremental->objective, one_shot->objective, 1e-8)
        << "after " << prefix.size() << " columns";
    EXPECT_NEAR(incremental->convexity_dual, one_shot->convexity_dual, 1e-6)
        << "after " << prefix.size() << " columns";
    double total = 0.0;
    for (double p : incremental->ordering_probs) total += p;
    EXPECT_NEAR(total, 1.0, 1e-8);
  }
  EXPECT_EQ(master.stats().solves, static_cast<int>(orderings.size()));
  // Every re-solve after the first resumed from the previous basis.
  EXPECT_EQ(master.stats().warm_solves,
            static_cast<int>(orderings.size()) - 1);
}

TEST(RestrictedMasterLpTest, SolveWithoutColumnsIsRejected) {
  const GameInstance instance = MakeTinyGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  ASSERT_TRUE(detection->SetThresholds({2.0, 2.0}).ok());
  RestrictedMasterLp master(*compiled, *detection);
  EXPECT_FALSE(master.Solve().ok());
}

TEST(FullLpTest, PolicyEvaluationAgreesWithLpObjective) {
  const GameInstance instance = MakeMediumGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 4.0);
  ASSERT_TRUE(detection.ok());
  const auto full = SolveFullGameLp(*compiled, *detection, {3.0, 3.0, 4.0});
  ASSERT_TRUE(full.ok());
  const auto eval = EvaluatePolicy(*compiled, *detection, full->policy);
  ASSERT_TRUE(eval.ok());
  EXPECT_NEAR(eval->auditor_loss, full->objective, 1e-6);
}

}  // namespace
}  // namespace auditgame::core
