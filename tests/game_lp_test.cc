#include "core/game_lp.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace auditgame::core {
namespace {

using testutil::MakeMediumGame;
using testutil::MakeTinyGame;

TEST(GameLpTest, SingleOrderingIsPureStrategy) {
  const GameInstance instance = MakeTinyGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  ASSERT_TRUE(detection->SetThresholds({2.0, 2.0}).ok());
  const auto solution =
      SolveRestrictedGameLp(*compiled, *detection, {{0, 1}});
  ASSERT_TRUE(solution.ok());
  EXPECT_NEAR(solution->ordering_probs[0], 1.0, 1e-9);
  // Matches the hand-computed best response of policy_test: loss 1.
  EXPECT_NEAR(solution->objective, 1.0, 1e-9);
}

TEST(GameLpTest, TwoOrderingsAllowMixing) {
  const GameInstance instance = MakeTinyGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  ASSERT_TRUE(detection->SetThresholds({2.0, 2.0}).ok());
  const auto solution =
      SolveRestrictedGameLp(*compiled, *detection, {{0, 1}, {1, 0}});
  ASSERT_TRUE(solution.ok());
  // With opt-out the auditor can deter completely (see policy_test).
  EXPECT_NEAR(solution->objective, 0.0, 1e-9);
  EXPECT_NEAR(solution->ordering_probs[0] + solution->ordering_probs[1], 1.0,
              1e-9);
}

TEST(GameLpTest, ObjectiveNeverWorseWithMoreColumns) {
  const GameInstance instance = MakeMediumGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 5.0);
  ASSERT_TRUE(detection.ok());
  ASSERT_TRUE(detection->SetThresholds({3.0, 3.0, 3.0}).ok());
  const auto restricted =
      SolveRestrictedGameLp(*compiled, *detection, {{0, 1, 2}});
  const auto wider = SolveRestrictedGameLp(
      *compiled, *detection, {{0, 1, 2}, {2, 1, 0}, {1, 2, 0}});
  ASSERT_TRUE(restricted.ok());
  ASSERT_TRUE(wider.ok());
  EXPECT_LE(wider->objective, restricted->objective + 1e-9);
}

TEST(GameLpTest, DualsHaveExpectedStructure) {
  const GameInstance instance = MakeTinyGame(/*can_opt_out=*/false);
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  ASSERT_TRUE(detection->SetThresholds({2.0, 2.0}).ok());
  const auto solution =
      SolveRestrictedGameLp(*compiled, *detection, {{0, 1}, {1, 0}});
  ASSERT_TRUE(solution.ok());
  // The victim-row duals are the adversary's mixed best response: they are
  // non-negative and, per group, sum to the group weight.
  double dual_total = 0.0;
  for (double y : solution->victim_duals[0]) {
    EXPECT_GE(y, -1e-9);
    dual_total += y;
  }
  EXPECT_NEAR(dual_total, compiled->groups[0].weight, 1e-6);
}

TEST(GameLpTest, EmptyOrderingSetRejected) {
  const GameInstance instance = MakeTinyGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  ASSERT_TRUE(detection->SetThresholds({2.0, 2.0}).ok());
  EXPECT_FALSE(SolveRestrictedGameLp(*compiled, *detection, {}).ok());
}

TEST(FullLpTest, MatchesManualMixOnTinyGame) {
  const GameInstance instance = MakeTinyGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  const auto full = SolveFullGameLp(*compiled, *detection, {2.0, 2.0});
  ASSERT_TRUE(full.ok());
  EXPECT_NEAR(full->objective, 0.0, 1e-9);
  EXPECT_TRUE(full->policy.Validate(2).ok());
}

TEST(FullLpTest, PolicyEvaluationAgreesWithLpObjective) {
  const GameInstance instance = MakeMediumGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 4.0);
  ASSERT_TRUE(detection.ok());
  const auto full = SolveFullGameLp(*compiled, *detection, {3.0, 3.0, 4.0});
  ASSERT_TRUE(full.ok());
  const auto eval = EvaluatePolicy(*compiled, *detection, full->policy);
  ASSERT_TRUE(eval.ok());
  EXPECT_NEAR(eval->auditor_loss, full->objective, 1e-6);
}

}  // namespace
}  // namespace auditgame::core
