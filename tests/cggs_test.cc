#include "core/cggs.h"

#include <gtest/gtest.h>

#include "core/game_lp.h"
#include "data/syn_a.h"
#include "tests/test_util.h"

namespace auditgame::core {
namespace {

using testutil::MakeMediumGame;
using testutil::MakeTinyGame;

TEST(CggsTest, FindsTheMixOnTinyGame) {
  const GameInstance instance = MakeTinyGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  const auto result = SolveCggs(*compiled, *detection, {2.0, 2.0});
  ASSERT_TRUE(result.ok());
  // Full LP optimum is 0 (complete deterrence); CGGS must reach it since
  // the other ordering has negative reduced cost.
  EXPECT_NEAR(result->objective, 0.0, 1e-9);
  EXPECT_GE(result->columns_generated, 1);
}

TEST(CggsTest, InvalidWarmStartOrderingsAreDroppedNotSolved) {
  const GameInstance instance = MakeTinyGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  CggsOptions options;
  // A stale cached policy: wrong length, out-of-range type, a duplicate
  // type, plus one valid seed and its duplicate.
  options.initial_orderings = {{0}, {0, 5}, {1, 1}, {1, 0}, {1, 0}};
  const auto result = SolveCggs(*compiled, *detection, {2.0, 2.0}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->objective, 0.0, 1e-9);
  for (const auto& column : result->columns) {
    ASSERT_EQ(column.size(), 2u);
    EXPECT_NE(column[0], column[1]);
  }
}

TEST(CggsTest, AllInvalidWarmStartsFallBackToIdentity) {
  const GameInstance instance = MakeTinyGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  CggsOptions options;
  options.initial_orderings = {{7, 8}, {0}};
  const auto result = SolveCggs(*compiled, *detection, {2.0, 2.0}, options);
  ASSERT_TRUE(result.ok());
  const auto cold = SolveCggs(*compiled, *detection, {2.0, 2.0});
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(result->objective, cold->objective);
}

TEST(CggsTest, NeverWorseThanInitialColumn) {
  const GameInstance instance = MakeMediumGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 5.0);
  ASSERT_TRUE(detection.ok());
  ASSERT_TRUE(detection->SetThresholds({3.0, 3.0, 3.0}).ok());
  const auto single =
      SolveRestrictedGameLp(*compiled, *detection, {{0, 1, 2}});
  ASSERT_TRUE(single.ok());
  const auto cggs = SolveCggs(*compiled, *detection, {3.0, 3.0, 3.0});
  ASSERT_TRUE(cggs.ok());
  EXPECT_LE(cggs->objective, single->objective + 1e-9);
}

TEST(CggsTest, MatchesFullLpOnSynA) {
  // On the controlled instance, CGGS should get within a small gap of the
  // exact LP over all 24 orderings (the paper's Table IV vs Table V).
  const auto instance = data::MakeSynA();
  ASSERT_TRUE(instance.ok());
  const auto compiled = Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  for (double budget : {4.0, 10.0}) {
    auto detection = DetectionModel::Create(*instance, budget);
    ASSERT_TRUE(detection.ok());
    const std::vector<double> thresholds = {3.0, 3.0, 2.0, 2.0};
    const auto full = SolveFullGameLp(*compiled, *detection, thresholds);
    const auto cggs = SolveCggs(*compiled, *detection, thresholds);
    ASSERT_TRUE(full.ok());
    ASSERT_TRUE(cggs.ok());
    EXPECT_LE(cggs->objective - full->objective, 0.05)
        << "budget " << budget;
    EXPECT_GE(cggs->objective - full->objective, -1e-6) << "budget " << budget;
  }
}

TEST(CggsTest, WarmStartColumnsAreUsed) {
  const GameInstance instance = MakeTinyGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  CggsOptions options;
  options.initial_orderings = {{0, 1}, {1, 0}};
  const auto result = SolveCggs(*compiled, *detection, {2.0, 2.0}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->objective, 0.0, 1e-9);
  // Optimal from the warm start: no columns needed to be generated.
  EXPECT_EQ(result->columns_generated, 0);
  EXPECT_EQ(result->lp_solves, 1);
}

TEST(CggsTest, IncrementalAndColdDenseMastersAgreeOnSynA) {
  // The incremental revised-simplex master (default) against the cold
  // dense-tableau reference path: on the controlled instance both must
  // land on the same objective, and the incremental run must have warm-
  // started every re-solve after the first.
  const auto instance = data::MakeSynA();
  ASSERT_TRUE(instance.ok());
  const auto compiled = Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  for (double budget : {4.0, 10.0}) {
    auto detection = DetectionModel::Create(*instance, budget);
    ASSERT_TRUE(detection.ok());
    const std::vector<double> thresholds = {3.0, 3.0, 2.0, 2.0};
    CggsOptions cold_options;
    cold_options.master_mode = CggsOptions::MasterMode::kColdDense;
    const auto cold = SolveCggs(*compiled, *detection, thresholds, cold_options);
    const auto incremental = SolveCggs(*compiled, *detection, thresholds);
    ASSERT_TRUE(cold.ok());
    ASSERT_TRUE(incremental.ok());
    EXPECT_NEAR(incremental->objective, cold->objective, 1e-6)
        << "budget " << budget;
    EXPECT_EQ(cold->warm_lp_solves, 0);
    EXPECT_EQ(incremental->warm_lp_solves, incremental->lp_solves - 1);
    EXPECT_TRUE(incremental->policy.Validate(4).ok());
  }
}

TEST(CggsTest, PolicyIsValidDistribution) {
  const GameInstance instance = MakeMediumGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 6.0);
  ASSERT_TRUE(detection.ok());
  const auto result = SolveCggs(*compiled, *detection, {4.0, 4.0, 4.0});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->policy.Validate(3).ok());
  // Evaluating the policy reproduces the LP objective.
  const auto eval = EvaluatePolicy(*compiled, *detection, result->policy);
  ASSERT_TRUE(eval.ok());
  EXPECT_NEAR(eval->auditor_loss, result->objective, 1e-6);
}

TEST(CggsTest, MaxColumnsCapRespected) {
  const GameInstance instance = MakeMediumGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 5.0);
  ASSERT_TRUE(detection.ok());
  CggsOptions options;
  options.max_columns = 2;
  const auto result = SolveCggs(*compiled, *detection, {3.0, 3.0, 3.0}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->columns.size(), 2u);
}

}  // namespace
}  // namespace auditgame::core
