#include "lp/revised_simplex.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "lp/model.h"
#include "lp/simplex.h"
#include "lp/validate.h"
#include "util/random.h"

namespace auditgame::lp {
namespace {

RevisedSolution SolveRevisedOrDie(const LpModel& model,
                                  const Basis* warm = nullptr) {
  auto solution = RevisedSimplex::Solve(model, SimplexSolver::Options(), warm);
  EXPECT_TRUE(solution.ok()) << solution.status();
  return *solution;
}

LpSolution SolveDenseOrDie(const LpModel& model) {
  auto solution = SimplexSolver::Solve(model);
  EXPECT_TRUE(solution.ok()) << solution.status();
  return *solution;
}

// Complementary slackness in the original model space: every constraint
// with a nonzero dual is tight, and every basic-looking variable (strictly
// between its bounds) has zero reduced cost.
void CheckComplementarySlackness(const LpModel& model,
                                 const LpSolution& solution) {
  for (int i = 0; i < model.num_constraints(); ++i) {
    const double slack = model.RowActivity(i, solution.primal) - model.rhs(i);
    EXPECT_NEAR(solution.dual[i] * slack, 0.0, 1e-5)
        << "row " << i << " dual " << solution.dual[i] << " slack " << slack;
  }
  for (int j = 0; j < model.num_variables(); ++j) {
    const double x = solution.primal[j];
    const double lb = model.lower_bound(j);
    const double ub = model.upper_bound(j);
    if (x > lb + 1e-6 && x < ub - 1e-6) {
      EXPECT_NEAR(solution.reduced_cost[j], 0.0, 1e-5) << "variable " << j;
    }
  }
}

TEST(RevisedSimplexTest, SimpleTwoVariableMin) {
  // min -x - 2y s.t. x + y <= 4, x in [0,3], y in [0,2]: the doubly
  // bounded variables cost the revised solver no extra rows.
  LpModel model;
  const int x = model.AddVariable(-1.0, 0.0, 3.0);
  const int y = model.AddVariable(-2.0, 0.0, 2.0);
  const int row = model.AddConstraint(Sense::kLessEqual, 4.0);
  model.AddCoefficient(row, x, 1.0);
  model.AddCoefficient(row, y, 1.0);

  const RevisedSolution result = SolveRevisedOrDie(model);
  ASSERT_EQ(result.solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(result.solution.objective, -6.0, 1e-9);
  EXPECT_NEAR(result.solution.primal[x], 2.0, 1e-9);
  EXPECT_NEAR(result.solution.primal[y], 2.0, 1e-9);
  EXPECT_TRUE(CheckOptimality(model, result.solution).ok());
}

TEST(RevisedSimplexTest, EqualityAndFreeVariable) {
  // min u s.t. u >= 3 - x, u >= x - 1, 0 <= x <= 10, u free.
  LpModel model;
  const int u = model.AddFreeVariable(1.0);
  const int x = model.AddVariable(0.0, 0.0, 10.0);
  const int r1 = model.AddConstraint(Sense::kGreaterEqual, 3.0);
  model.AddCoefficient(r1, u, 1.0);
  model.AddCoefficient(r1, x, 1.0);
  const int r2 = model.AddConstraint(Sense::kGreaterEqual, -1.0);
  model.AddCoefficient(r2, u, 1.0);
  model.AddCoefficient(r2, x, -1.0);

  const RevisedSolution result = SolveRevisedOrDie(model);
  ASSERT_EQ(result.solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(result.solution.objective, 1.0, 1e-8);
  EXPECT_NEAR(result.solution.primal[u], 1.0, 1e-8);
  EXPECT_NEAR(result.solution.primal[x], 2.0, 1e-8);
  EXPECT_TRUE(CheckOptimality(model, result.solution).ok());
}

TEST(RevisedSimplexTest, DetectsInfeasible) {
  LpModel model;
  const int x = model.AddNonNegativeVariable(1.0);
  const int r1 = model.AddConstraint(Sense::kGreaterEqual, 2.0);
  model.AddCoefficient(r1, x, 1.0);
  const int r2 = model.AddConstraint(Sense::kLessEqual, 1.0);
  model.AddCoefficient(r2, x, 1.0);

  const RevisedSolution result = SolveRevisedOrDie(model);
  EXPECT_EQ(result.solution.status, SolveStatus::kInfeasible);
}

TEST(RevisedSimplexTest, DetectsUnbounded) {
  LpModel model;
  const int x = model.AddNonNegativeVariable(-1.0);
  const int row = model.AddConstraint(Sense::kGreaterEqual, 1.0);
  model.AddCoefficient(row, x, 1.0);

  const RevisedSolution result = SolveRevisedOrDie(model);
  EXPECT_EQ(result.solution.status, SolveStatus::kUnbounded);
}

TEST(RevisedSimplexTest, NoConstraintsUsesBoundsAndKeepsCosts) {
  LpModel model;
  const int x = model.AddVariable(1.0, -2.0, 5.0);
  const int y = model.AddVariable(-1.0, 0.0, 3.0);
  const RevisedSolution result = SolveRevisedOrDie(model);
  ASSERT_EQ(result.solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(result.solution.primal[x], -2.0, 1e-12);
  EXPECT_NEAR(result.solution.primal[y], 3.0, 1e-12);
  EXPECT_NEAR(result.solution.objective, -5.0, 1e-12);
  EXPECT_EQ(result.solution.reduced_cost[x], 1.0);
  EXPECT_EQ(result.solution.reduced_cost[y], -1.0);
}

TEST(RevisedSimplexTest, NoConstraintsZeroCostRespectsNegativeBounds) {
  LpModel model;
  const int x = model.AddVariable(0.0, -kInfinity, -5.0);
  const int y = model.AddVariable(0.0, -3.0, -1.0);
  const RevisedSolution result = SolveRevisedOrDie(model);
  ASSERT_EQ(result.solution.status, SolveStatus::kOptimal);
  EXPECT_EQ(result.solution.primal[x], -5.0);
  EXPECT_EQ(result.solution.primal[y], -1.0);
  EXPECT_EQ(result.basis.structural[x], VarStatus::kAtUpper);
  EXPECT_EQ(result.basis.structural[y], VarStatus::kAtUpper);
}

TEST(RevisedSimplexTest, DegenerateProblemTerminates) {
  LpModel model;
  const int x = model.AddNonNegativeVariable(-0.75);
  const int y = model.AddNonNegativeVariable(150.0);
  const int z = model.AddNonNegativeVariable(-0.02);
  const int w = model.AddNonNegativeVariable(6.0);
  const int r1 = model.AddConstraint(Sense::kLessEqual, 0.0);
  model.AddCoefficient(r1, x, 0.25);
  model.AddCoefficient(r1, y, -60.0);
  model.AddCoefficient(r1, z, -0.04);
  model.AddCoefficient(r1, w, 9.0);
  const int r2 = model.AddConstraint(Sense::kLessEqual, 0.0);
  model.AddCoefficient(r2, x, 0.5);
  model.AddCoefficient(r2, y, -90.0);
  model.AddCoefficient(r2, z, -0.02);
  model.AddCoefficient(r2, w, 3.0);
  const int r3 = model.AddConstraint(Sense::kLessEqual, 1.0);
  model.AddCoefficient(r3, z, 1.0);

  const RevisedSolution result = SolveRevisedOrDie(model);
  ASSERT_EQ(result.solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(result.solution.objective, -0.05, 1e-8);
  EXPECT_TRUE(CheckOptimality(model, result.solution).ok());
}

TEST(RevisedSimplexTest, BackendDispatchThroughSimplexSolverOptions) {
  LpModel model;
  const int x = model.AddVariable(-1.0, 0.0, 3.0);
  const int row = model.AddConstraint(Sense::kLessEqual, 2.0);
  model.AddCoefficient(row, x, 1.0);
  SimplexSolver::Options options;
  options.backend = SimplexBackend::kRevised;
  const auto solution = SimplexSolver::Solve(model, options);
  ASSERT_TRUE(solution.ok());
  ASSERT_EQ(solution->status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution->objective, -2.0, 1e-9);
}

// ---- Warm start ----------------------------------------------------------

TEST(RevisedSimplexTest, WarmStartAfterAppendingColumnSkipsPhase1) {
  // A convexity-constrained LP in the column-generation shape.
  LpModel model;
  const int p0 = model.AddNonNegativeVariable(2.0);
  const int p1 = model.AddNonNegativeVariable(1.0);
  const int conv = model.AddConstraint(Sense::kEqual, 1.0);
  model.AddCoefficient(conv, p0, 1.0);
  model.AddCoefficient(conv, p1, 1.0);

  const RevisedSolution first = SolveRevisedOrDie(model);
  ASSERT_EQ(first.solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(first.solution.objective, 1.0, 1e-9);

  // Append a cheaper column and re-solve from the previous basis: the old
  // basis stays primal-feasible, so phase 1 does no work.
  const int p2 = model.AddNonNegativeVariable(0.5);
  model.AddCoefficient(conv, p2, 1.0);
  const RevisedSolution warm = SolveRevisedOrDie(model, &first.basis);
  ASSERT_EQ(warm.solution.status, SolveStatus::kOptimal);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_EQ(warm.solution.phase1_iterations, 0);
  EXPECT_NEAR(warm.solution.objective, 0.5, 1e-9);
  EXPECT_NEAR(warm.solution.primal[p2], 1.0, 1e-9);
  EXPECT_NEAR(warm.solution.primal[p0] + warm.solution.primal[p1], 0.0, 1e-9);
}

TEST(RevisedSimplexTest, IncompatibleWarmStartFallsBackToCold) {
  LpModel model;
  const int x = model.AddVariable(-1.0, 0.0, 3.0);
  const int row = model.AddConstraint(Sense::kLessEqual, 2.0);
  model.AddCoefficient(row, x, 1.0);

  Basis stale;
  stale.structural = {VarStatus::kBasic, VarStatus::kBasic};  // too many
  stale.logical = {VarStatus::kBasic, VarStatus::kBasic};     // wrong m
  const RevisedSolution result = SolveRevisedOrDie(model, &stale);
  ASSERT_EQ(result.solution.status, SolveStatus::kOptimal);
  EXPECT_FALSE(result.warm_started);
  EXPECT_NEAR(result.solution.objective, -2.0, 1e-9);
}

TEST(RevisedSimplexTest, WarmStartMatchesColdOnRepeatedSolve) {
  util::Rng rng(99);
  LpModel model;
  const int n = 6;
  for (int j = 0; j < n; ++j) model.AddVariable(rng.Uniform(-2.0, 2.0), 0.0, 4.0);
  for (int i = 0; i < 4; ++i) {
    const int row = model.AddConstraint(Sense::kLessEqual, 6.0);
    for (int j = 0; j < n; ++j) {
      model.AddCoefficient(row, j, rng.Uniform(0.0, 2.0));
    }
  }
  const RevisedSolution cold = SolveRevisedOrDie(model);
  ASSERT_EQ(cold.solution.status, SolveStatus::kOptimal);
  const RevisedSolution warm = SolveRevisedOrDie(model, &cold.basis);
  ASSERT_EQ(warm.solution.status, SolveStatus::kOptimal);
  EXPECT_TRUE(warm.warm_started);
  // Re-solving from the optimal basis is pure verification: zero pivots.
  EXPECT_EQ(warm.solution.phase1_iterations, 0);
  EXPECT_EQ(warm.solution.phase2_iterations, 0);
  EXPECT_NEAR(warm.solution.objective, cold.solution.objective, 1e-9);
}

// ---- Randomized dense-vs-revised agreement -------------------------------

// Random bounded LP mixing doubly-bounded, one-sided, and free variables
// and all three row senses, built around a known interior point so most
// instances are feasible (and both solvers must agree when they are not).
LpModel RandomBoundedLp(uint64_t seed, int n, int m) {
  util::Rng rng(seed);
  LpModel model;
  std::vector<double> x0(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    const double c = rng.Uniform(-2.0, 2.0);
    const int kind = static_cast<int>(rng.UniformInt(4));
    if (kind == 0) {
      model.AddVariable(c, 0.0, rng.Uniform(1.0, 8.0));  // doubly bounded
    } else if (kind == 1) {
      model.AddVariable(c, rng.Uniform(-4.0, 0.0), kInfinity);
    } else if (kind == 2) {
      model.AddVariable(c, -2.0, 6.0);
    } else {
      model.AddFreeVariable(c);
    }
    const double lb = model.lower_bound(j);
    const double ub = model.upper_bound(j);
    const double low = lb == -kInfinity ? -2.0 : lb;
    const double high = ub == kInfinity ? low + 4.0 : ub;
    x0[static_cast<size_t>(j)] = rng.Uniform(low, high);
  }
  for (int i = 0; i < m; ++i) {
    double activity = 0.0;
    std::vector<double> coeffs(static_cast<size_t>(n));
    for (int j = 0; j < n; ++j) {
      coeffs[static_cast<size_t>(j)] = rng.Uniform(-3.0, 3.0);
      activity += coeffs[static_cast<size_t>(j)] * x0[static_cast<size_t>(j)];
    }
    const int kind = static_cast<int>(rng.UniformInt(3));
    int row;
    if (kind == 0) {
      row = model.AddConstraint(Sense::kLessEqual,
                                activity + rng.Uniform(0.0, 2.0));
    } else if (kind == 1) {
      row = model.AddConstraint(Sense::kGreaterEqual,
                                activity - rng.Uniform(0.0, 2.0));
    } else {
      row = model.AddConstraint(Sense::kEqual, activity);
    }
    for (int j = 0; j < n; ++j) {
      model.AddCoefficient(row, j, coeffs[static_cast<size_t>(j)]);
    }
  }
  return model;
}

class BackendAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(BackendAgreementTest, DenseAndRevisedAgreeOnRandomBoundedLps) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 6121 + 5);
  const int n = 2 + static_cast<int>(rng.UniformInt(8));
  const int m = 1 + static_cast<int>(rng.UniformInt(8));
  const LpModel model = RandomBoundedLp(rng(), n, m);

  const LpSolution dense = SolveDenseOrDie(model);
  const RevisedSolution revised = SolveRevisedOrDie(model);
  ASSERT_EQ(revised.solution.status, dense.status)
      << "dense=" << SolveStatusToString(dense.status)
      << " revised=" << SolveStatusToString(revised.solution.status);
  if (dense.status != SolveStatus::kOptimal) return;

  EXPECT_NEAR(revised.solution.objective, dense.objective,
              1e-6 * (1.0 + std::fabs(dense.objective)));
  // Primal points may differ at degenerate optima, but both must be
  // feasible, optimal, and complementary.
  for (const LpSolution* solution : {&dense, &revised.solution}) {
    const auto check = CheckOptimality(model, *solution);
    EXPECT_TRUE(check.ok()) << check.ToString();
    CheckComplementarySlackness(model, *solution);
  }
  // Objective of the revised primal point under the model must equal the
  // reported objective (guards against basis/value drift).
  EXPECT_NEAR(model.Objective(revised.solution.primal),
              revised.solution.objective, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomLps, BackendAgreementTest,
                         ::testing::Range(0, 100));

}  // namespace
}  // namespace auditgame::lp
