#include "audit/executor.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace auditgame::audit {
namespace {

AuditConfiguration MakeConfig(std::vector<int> ordering,
                              std::vector<double> thresholds, double budget) {
  AuditConfiguration config;
  config.ordering = std::move(ordering);
  config.thresholds = std::move(thresholds);
  config.audit_costs.assign(config.thresholds.size(), 1.0);
  config.budget = budget;
  return config;
}

TEST(AuditConfigurationTest, ValidatesPermutation) {
  EXPECT_TRUE(MakeConfig({0, 1, 2}, {1, 1, 1}, 3).Validate().ok());
  EXPECT_FALSE(MakeConfig({0, 0, 2}, {1, 1, 1}, 3).Validate().ok());
  EXPECT_FALSE(MakeConfig({0, 1}, {1, 1, 1}, 3).Validate().ok());
  EXPECT_FALSE(MakeConfig({0, 1, 3}, {1, 1, 1}, 3).Validate().ok());
}

TEST(AuditConfigurationTest, ValidatesEconomics) {
  auto config = MakeConfig({0}, {1}, 1);
  config.audit_costs = {0.0};
  EXPECT_FALSE(config.Validate().ok());
  config.audit_costs = {1.0};
  config.thresholds = {-1.0};
  EXPECT_FALSE(config.Validate().ok());
  config.thresholds = {1.0};
  config.budget = -1;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(AuditedCountsTest, BudgetLimitsTotalAudits) {
  // B = 2, thresholds 1 each: only the first two types in the order get one
  // audit each.
  const auto config = MakeConfig({0, 1, 2, 3}, {1, 1, 1, 1}, 2);
  const auto audited = AuditedCounts(config, {5, 5, 5, 5});
  ASSERT_TRUE(audited.ok());
  EXPECT_EQ(*audited, (std::vector<int>{1, 1, 0, 0}));
}

TEST(AuditedCountsTest, OrderingControlsWhoIsStarved) {
  const auto config = MakeConfig({3, 2, 1, 0}, {1, 1, 1, 1}, 2);
  const auto audited = AuditedCounts(config, {5, 5, 5, 5});
  ASSERT_TRUE(audited.ok());
  EXPECT_EQ(*audited, (std::vector<int>{0, 0, 1, 1}));
}

TEST(AuditedCountsTest, ThresholdCapsPerType) {
  const auto config = MakeConfig({0, 1}, {3, 10}, 100);
  const auto audited = AuditedCounts(config, {7, 4});
  ASSERT_TRUE(audited.ok());
  EXPECT_EQ((*audited)[0], 3);  // threshold-capped
  EXPECT_EQ((*audited)[1], 4);  // count-capped
}

TEST(AuditedCountsTest, RealizedConsumptionFreesBudget) {
  // Type 0 has threshold 5 but only 2 alerts arrive: it consumes 2, leaving
  // 8 for type 1 (paper's min(b, Z*C) consumption).
  const auto config = MakeConfig({0, 1}, {5, 10}, 10);
  const auto audited = AuditedCounts(config, {2, 20});
  ASSERT_TRUE(audited.ok());
  EXPECT_EQ((*audited)[0], 2);
  EXPECT_EQ((*audited)[1], 8);
}

TEST(AuditedCountsTest, UnrealizedThresholdStillReservedWhenAlertsArrive) {
  // Type 0: threshold 5, 9 alerts -> audits 5, consumes 5; type 1 gets 5.
  const auto config = MakeConfig({0, 1}, {5, 10}, 10);
  const auto audited = AuditedCounts(config, {9, 20});
  ASSERT_TRUE(audited.ok());
  EXPECT_EQ((*audited)[0], 5);
  EXPECT_EQ((*audited)[1], 5);
}

TEST(AuditedCountsTest, NonUnitCostsFloorTheCapacity) {
  AuditConfiguration config;
  config.ordering = {0, 1};
  config.thresholds = {5.0, 10.0};
  config.audit_costs = {2.0, 3.0};
  config.budget = 10.0;
  // Type 0: floor(5/2) = 2 audits, consumes min(5, 4*2) = 5.
  // Type 1: remaining 5 -> floor(5/3) = 1 audit (threshold allows 3).
  const auto audited = AuditedCounts(config, {4, 9});
  ASSERT_TRUE(audited.ok());
  EXPECT_EQ((*audited)[0], 2);
  EXPECT_EQ((*audited)[1], 1);
}

TEST(AuditedCountsTest, ZeroBudgetAuditsNothing) {
  const auto config = MakeConfig({0, 1}, {5, 5}, 0);
  const auto audited = AuditedCounts(config, {3, 3});
  ASSERT_TRUE(audited.ok());
  EXPECT_EQ(*audited, (std::vector<int>{0, 0}));
}

TEST(AuditedCountsTest, RejectsCountSizeMismatch) {
  const auto config = MakeConfig({0, 1}, {1, 1}, 2);
  EXPECT_FALSE(AuditedCounts(config, {1}).ok());
}

TEST(SimulateDayTest, NoAttackNeverDetects) {
  const auto config = MakeConfig({0, 1}, {2, 2}, 4);
  util::Rng rng(7);
  const auto outcome = SimulateDay(config, {3, 3}, -1, rng);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->attack_alert_raised);
  EXPECT_FALSE(outcome->attack_detected);
  EXPECT_EQ(outcome->alert_counts, (std::vector<int>{3, 3}));
}

TEST(SimulateDayTest, AttackAlertJoinsBin) {
  const auto config = MakeConfig({0, 1}, {2, 2}, 4);
  util::Rng rng(7);
  const auto outcome = SimulateDay(config, {3, 3}, 1, rng);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->attack_alert_raised);
  EXPECT_EQ(outcome->alert_counts[1], 4);
}

TEST(SimulateDayTest, FullCoverageAlwaysDetects) {
  const auto config = MakeConfig({0}, {100}, 100);
  util::Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    const auto outcome = SimulateDay(config, {5}, 0, rng);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->attack_detected);
  }
}

TEST(SimulateDayTest, EmpiricalDetectionRateMatchesRatio) {
  // Bin of 4 benign + 1 attack, capacity 2 -> detection prob 2/5.
  const auto config = MakeConfig({0}, {2}, 2);
  util::Rng rng(13);
  int detected = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto outcome = SimulateDay(config, {4}, 0, rng);
    ASSERT_TRUE(outcome.ok());
    if (outcome->attack_detected) ++detected;
  }
  EXPECT_NEAR(detected / static_cast<double>(n), 0.4, 0.01);
}

TEST(SimulateDayTest, RejectsBadAttackType) {
  const auto config = MakeConfig({0}, {1}, 1);
  util::Rng rng(1);
  EXPECT_FALSE(SimulateDay(config, {1}, 5, rng).ok());
}

}  // namespace
}  // namespace auditgame::audit
