#include "lp/simplex.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "lp/model.h"
#include "lp/validate.h"
#include "util/random.h"

namespace auditgame::lp {
namespace {

LpSolution SolveOrDie(const LpModel& model) {
  auto solution = SimplexSolver::Solve(model);
  EXPECT_TRUE(solution.ok()) << solution.status();
  return *solution;
}

TEST(SimplexTest, SimpleTwoVariableMin) {
  // min -x - 2y s.t. x + y <= 4, x <= 3, y <= 2, x,y >= 0.
  LpModel model;
  const int x = model.AddVariable(-1.0, 0.0, 3.0);
  const int y = model.AddVariable(-2.0, 0.0, 2.0);
  const int row = model.AddConstraint(Sense::kLessEqual, 4.0);
  model.AddCoefficient(row, x, 1.0);
  model.AddCoefficient(row, y, 1.0);

  const LpSolution solution = SolveOrDie(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -6.0, 1e-9);
  EXPECT_NEAR(solution.primal[x], 2.0, 1e-9);
  EXPECT_NEAR(solution.primal[y], 2.0, 1e-9);
  EXPECT_TRUE(CheckOptimality(model, solution).ok());
}

TEST(SimplexTest, EqualityConstraint) {
  // min x + y s.t. x + 2y = 3, x,y >= 0  ->  y = 1.5, x = 0, obj 1.5.
  LpModel model;
  const int x = model.AddNonNegativeVariable(1.0);
  const int y = model.AddNonNegativeVariable(1.0);
  const int row = model.AddConstraint(Sense::kEqual, 3.0);
  model.AddCoefficient(row, x, 1.0);
  model.AddCoefficient(row, y, 2.0);

  const LpSolution solution = SolveOrDie(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 1.5, 1e-9);
  EXPECT_NEAR(solution.primal[y], 1.5, 1e-9);
  EXPECT_TRUE(CheckOptimality(model, solution).ok());
}

TEST(SimplexTest, FreeVariable) {
  // min u s.t. u >= 3 - x, u >= x - 1, 0 <= x <= 10, u free.
  // Optimum: x = 2, u = 1.
  LpModel model;
  const int u = model.AddFreeVariable(1.0);
  const int x = model.AddVariable(0.0, 0.0, 10.0);
  const int r1 = model.AddConstraint(Sense::kGreaterEqual, 3.0);
  model.AddCoefficient(r1, u, 1.0);
  model.AddCoefficient(r1, x, 1.0);
  const int r2 = model.AddConstraint(Sense::kGreaterEqual, -1.0);
  model.AddCoefficient(r2, u, 1.0);
  model.AddCoefficient(r2, x, -1.0);

  const LpSolution solution = SolveOrDie(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 1.0, 1e-8);
  EXPECT_NEAR(solution.primal[u], 1.0, 1e-8);
  EXPECT_NEAR(solution.primal[x], 2.0, 1e-8);
  EXPECT_TRUE(CheckOptimality(model, solution).ok());
}

TEST(SimplexTest, NegativeObjectiveValue) {
  // min x with x >= -5 (free direction blocked by constraint).
  LpModel model;
  const int x = model.AddFreeVariable(1.0);
  const int row = model.AddConstraint(Sense::kGreaterEqual, -5.0);
  model.AddCoefficient(row, x, 1.0);

  const LpSolution solution = SolveOrDie(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -5.0, 1e-9);
}

TEST(SimplexTest, DetectsInfeasible) {
  // x >= 2 and x <= 1.
  LpModel model;
  const int x = model.AddNonNegativeVariable(1.0);
  const int r1 = model.AddConstraint(Sense::kGreaterEqual, 2.0);
  model.AddCoefficient(r1, x, 1.0);
  const int r2 = model.AddConstraint(Sense::kLessEqual, 1.0);
  model.AddCoefficient(r2, x, 1.0);

  const LpSolution solution = SolveOrDie(model);
  EXPECT_EQ(solution.status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  // min -x, x >= 0, only constraint x >= 1.
  LpModel model;
  const int x = model.AddNonNegativeVariable(-1.0);
  const int row = model.AddConstraint(Sense::kGreaterEqual, 1.0);
  model.AddCoefficient(row, x, 1.0);

  const LpSolution solution = SolveOrDie(model);
  EXPECT_EQ(solution.status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Classic degenerate LP (multiple constraints active at the origin).
  LpModel model;
  const int x = model.AddNonNegativeVariable(-0.75);
  const int y = model.AddNonNegativeVariable(150.0);
  const int z = model.AddNonNegativeVariable(-0.02);
  const int w = model.AddNonNegativeVariable(6.0);
  const int r1 = model.AddConstraint(Sense::kLessEqual, 0.0);
  model.AddCoefficient(r1, x, 0.25);
  model.AddCoefficient(r1, y, -60.0);
  model.AddCoefficient(r1, z, -0.04);
  model.AddCoefficient(r1, w, 9.0);
  const int r2 = model.AddConstraint(Sense::kLessEqual, 0.0);
  model.AddCoefficient(r2, x, 0.5);
  model.AddCoefficient(r2, y, -90.0);
  model.AddCoefficient(r2, z, -0.02);
  model.AddCoefficient(r2, w, 3.0);
  const int r3 = model.AddConstraint(Sense::kLessEqual, 1.0);
  model.AddCoefficient(r3, z, 1.0);

  const LpSolution solution = SolveOrDie(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -0.05, 1e-8);
  EXPECT_TRUE(CheckOptimality(model, solution).ok());
}

TEST(SimplexTest, DualsOfZeroSumGameAreCorrect) {
  // Matching pennies as an LP: min_u u s.t. u >= payoff of each pure column
  // response; value is 0 with uniform mixing.
  LpModel model;
  const int u = model.AddFreeVariable(1.0);
  const int p0 = model.AddNonNegativeVariable(0.0);
  const int p1 = model.AddNonNegativeVariable(0.0);
  // u >= p0 - p1 and u >= p1 - p0 (payoffs +/-1).
  const int r1 = model.AddConstraint(Sense::kGreaterEqual, 0.0);
  model.AddCoefficient(r1, u, 1.0);
  model.AddCoefficient(r1, p0, -1.0);
  model.AddCoefficient(r1, p1, 1.0);
  const int r2 = model.AddConstraint(Sense::kGreaterEqual, 0.0);
  model.AddCoefficient(r2, u, 1.0);
  model.AddCoefficient(r2, p0, 1.0);
  model.AddCoefficient(r2, p1, -1.0);
  const int conv = model.AddConstraint(Sense::kEqual, 1.0);
  model.AddCoefficient(conv, p0, 1.0);
  model.AddCoefficient(conv, p1, 1.0);

  const LpSolution solution = SolveOrDie(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 0.0, 1e-9);
  EXPECT_NEAR(solution.primal[p0], 0.5, 1e-9);
  EXPECT_NEAR(solution.primal[p1], 0.5, 1e-9);
  // Duals of the two best-response rows are the opponent's mixed strategy.
  EXPECT_NEAR(solution.dual[r1], 0.5, 1e-9);
  EXPECT_NEAR(solution.dual[r2], 0.5, 1e-9);
  EXPECT_TRUE(CheckOptimality(model, solution).ok());
}

TEST(SimplexTest, ObjectiveConstantIsReported) {
  LpModel model;
  const int x = model.AddNonNegativeVariable(1.0);
  model.AddObjectiveConstant(10.0);
  const int row = model.AddConstraint(Sense::kGreaterEqual, 2.0);
  model.AddCoefficient(row, x, 1.0);

  const LpSolution solution = SolveOrDie(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 12.0, 1e-9);
}

TEST(SimplexTest, NoConstraintsUsesBounds) {
  LpModel model;
  const int x = model.AddVariable(1.0, -2.0, 5.0);
  const int y = model.AddVariable(-1.0, 0.0, 3.0);
  const LpSolution solution = SolveOrDie(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.primal[x], -2.0, 1e-12);
  EXPECT_NEAR(solution.primal[y], 3.0, 1e-12);
  EXPECT_NEAR(solution.objective, -5.0, 1e-12);
}

TEST(SimplexTest, NoConstraintsKeepsCostsAsReducedCosts) {
  // Without constraints there are no duals: a variable resting at a bound
  // keeps its full cost as its reduced cost, exactly as in the constrained
  // bounded-variable convention (regression: this used to report zeros).
  LpModel model;
  const int x = model.AddVariable(1.0, -2.0, 5.0);
  const int y = model.AddVariable(-1.0, 0.0, 3.0);
  const int z = model.AddFreeVariable(0.0);
  const LpSolution solution = SolveOrDie(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_EQ(solution.reduced_cost[x], 1.0);
  EXPECT_EQ(solution.reduced_cost[y], -1.0);
  EXPECT_EQ(solution.reduced_cost[z], 0.0);
}

TEST(SimplexTest, NoConstraintsZeroCostRespectsNegativeBounds) {
  // A zero-cost variable whose whole feasible range is below zero must be
  // clamped into it (regression: max(0, lb) ignored the upper bound and
  // reported the infeasible point 0 as optimal). One-sided bounds only:
  // a doubly-bounded variable would add an upper-bound row and leave the
  // no-constraint path under test.
  LpModel model;
  const int x = model.AddVariable(0.0, -kInfinity, -5.0);
  const int y = model.AddVariable(0.0, 2.0, kInfinity);
  const int z = model.AddVariable(0.0, -kInfinity, 3.0);
  const LpSolution solution = SolveOrDie(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_EQ(solution.primal[x], -5.0);
  EXPECT_EQ(solution.primal[y], 2.0);
  EXPECT_EQ(solution.primal[z], 0.0);
  EXPECT_TRUE(CheckPrimalFeasibility(model, solution).ok());
}

TEST(SimplexTest, ExactIterationBudgetStillReportsOptimal) {
  // min x s.t. x = 3, 0 <= x <= 10: phase 1 needs exactly one pivot (the
  // artificial leaves for x) and the resulting basis is already phase-2
  // optimal. With max_iterations equal to the phase-1 iteration count the
  // solver must report the optimum, not kIterationLimit (regression: the
  // budget used to be enforced before checking for an entering column).
  LpModel model;
  const int x = model.AddVariable(1.0, 0.0, 10.0);
  const int row = model.AddConstraint(Sense::kEqual, 3.0);
  model.AddCoefficient(row, x, 1.0);

  const LpSolution reference = SolveOrDie(model);
  ASSERT_EQ(reference.status, SolveStatus::kOptimal);
  ASSERT_GE(reference.phase1_iterations, 1);
  ASSERT_EQ(reference.phase2_iterations, 0);

  SimplexSolver::Options options;
  options.max_iterations = reference.phase1_iterations;
  const auto capped = SimplexSolver::Solve(model, options);
  ASSERT_TRUE(capped.ok());
  ASSERT_EQ(capped->status, SolveStatus::kOptimal);
  EXPECT_NEAR(capped->objective, 3.0, 1e-9);

  // One iteration short must still hit the limit.
  options.max_iterations = reference.phase1_iterations - 1;
  const auto starved = SimplexSolver::Solve(model, options);
  ASSERT_TRUE(starved.ok());
  EXPECT_EQ(starved->status, SolveStatus::kIterationLimit);
}

TEST(SimplexTest, LeavingRowTiesBreakByLowestBasisIndex) {
  // Two identical rows give an exact ratio tie; the deterministic rule
  // must pivot out the slack with the smallest column index (the first
  // row), leaving the binding dual on row 1 and zero on row 2.
  LpModel model;
  const int x = model.AddNonNegativeVariable(-1.0);
  const int r1 = model.AddConstraint(Sense::kLessEqual, 2.0);
  model.AddCoefficient(r1, x, 1.0);
  const int r2 = model.AddConstraint(Sense::kLessEqual, 2.0);
  model.AddCoefficient(r2, x, 1.0);

  const LpSolution solution = SolveOrDie(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -2.0, 1e-9);
  EXPECT_NEAR(solution.dual[r1], -1.0, 1e-9);
  EXPECT_NEAR(solution.dual[r2], 0.0, 1e-9);
  EXPECT_TRUE(CheckOptimality(model, solution).ok());
}

// Property test: random feasible LPs — solver output must pass independent
// feasibility + strong-duality validation.
class RandomLpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpTest, RandomFeasibleLpPassesValidation) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  const int n = 2 + static_cast<int>(rng.UniformInt(6));
  const int m = 1 + static_cast<int>(rng.UniformInt(6));
  LpModel model;
  // Known feasible point x0 in [0, 5]^n keeps every instance feasible.
  std::vector<double> x0(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    x0[static_cast<size_t>(j)] = rng.Uniform(0.0, 5.0);
    model.AddVariable(rng.Uniform(-2.0, 2.0), 0.0, 10.0);
  }
  for (int i = 0; i < m; ++i) {
    double activity = 0.0;
    std::vector<double> coeffs(static_cast<size_t>(n));
    for (int j = 0; j < n; ++j) {
      coeffs[static_cast<size_t>(j)] = rng.Uniform(-3.0, 3.0);
      activity += coeffs[static_cast<size_t>(j)] * x0[static_cast<size_t>(j)];
    }
    // Slack the rhs so x0 satisfies the row.
    const int kind = static_cast<int>(rng.UniformInt(3));
    int row;
    if (kind == 0) {
      row = model.AddConstraint(Sense::kLessEqual, activity + rng.Uniform(0.0, 2.0));
    } else if (kind == 1) {
      row = model.AddConstraint(Sense::kGreaterEqual, activity - rng.Uniform(0.0, 2.0));
    } else {
      row = model.AddConstraint(Sense::kEqual, activity);
    }
    for (int j = 0; j < n; ++j) {
      model.AddCoefficient(row, j, coeffs[static_cast<size_t>(j)]);
    }
  }
  const LpSolution solution = SolveOrDie(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  const auto check = CheckOptimality(model, solution);
  EXPECT_TRUE(check.ok()) << check.ToString();
  // The optimum cannot be worse than the known feasible point.
  EXPECT_LE(solution.objective, model.Objective(x0) + 1e-7);
}

INSTANTIATE_TEST_SUITE_P(RandomLps, RandomLpTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace auditgame::lp
