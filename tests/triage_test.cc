#include "audit/triage.h"

#include <set>

#include <gtest/gtest.h>

#include "util/random.h"

namespace auditgame::audit {
namespace {

AuditConfiguration MakeConfig(std::vector<int> ordering,
                              std::vector<double> thresholds, double budget) {
  AuditConfiguration config;
  config.ordering = std::move(ordering);
  config.thresholds = std::move(thresholds);
  config.audit_costs.assign(config.thresholds.size(), 1.0);
  config.budget = budget;
  return config;
}

PendingAlert Alert(int type, const std::string& subject) {
  PendingAlert alert;
  alert.type = type;
  alert.subject_id = subject;
  return alert;
}

TEST(AlertQueueTest, AssignsSequentialIds) {
  AlertQueue queue(2);
  ASSERT_TRUE(queue.Add(Alert(0, "a")).ok());
  ASSERT_TRUE(queue.Add(Alert(1, "b")).ok());
  ASSERT_TRUE(queue.Add(Alert(0, "c")).ok());
  EXPECT_EQ(queue.Counts(), (std::vector<int>{2, 1}));
  EXPECT_EQ(queue.bin(0)[0].alert_id, 1);
  EXPECT_EQ(queue.bin(1)[0].alert_id, 2);
  EXPECT_EQ(queue.bin(0)[1].alert_id, 3);
  EXPECT_EQ(queue.total_alerts(), 3);
}

TEST(AlertQueueTest, RejectsBadType) {
  AlertQueue queue(2);
  EXPECT_FALSE(queue.Add(Alert(2, "x")).ok());
  EXPECT_FALSE(queue.Add(Alert(-1, "x")).ok());
}

TEST(AlertQueueTest, ClearEmptiesBins) {
  AlertQueue queue(1);
  ASSERT_TRUE(queue.Add(Alert(0, "a")).ok());
  queue.Clear();
  EXPECT_EQ(queue.Counts(), (std::vector<int>{0}));
}

TEST(PlanAuditPeriodTest, SelectionMatchesExecutorCounts) {
  AlertQueue queue(2);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.Add(Alert(0, "s")).ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(queue.Add(Alert(1, "s")).ok());
  const auto config = MakeConfig({0, 1}, {3, 10}, 5);
  util::Rng rng(5);
  const auto plan = PlanAuditPeriod(config, queue, rng);
  ASSERT_TRUE(plan.ok());
  // Type 0: capped by threshold at 3; consumes 3; type 1 gets 2.
  EXPECT_EQ(plan->audited_counts, (std::vector<int>{3, 2}));
  EXPECT_EQ(plan->selected.size(), 5u);
  EXPECT_DOUBLE_EQ(plan->spent, 5.0);
}

TEST(PlanAuditPeriodTest, SelectedAlertsAreDistinctAndFromRightBin) {
  AlertQueue queue(1);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(queue.Add(Alert(0, "s")).ok());
  const auto config = MakeConfig({0}, {4}, 4);
  util::Rng rng(9);
  const auto plan = PlanAuditPeriod(config, queue, rng);
  ASSERT_TRUE(plan.ok());
  std::set<int64_t> ids;
  for (const auto& alert : plan->selected) {
    EXPECT_EQ(alert.type, 0);
    ids.insert(alert.alert_id);
  }
  EXPECT_EQ(ids.size(), 4u);
}

TEST(PlanAuditPeriodTest, SelectionIsUniform) {
  // Bin of 4, capacity 2: every alert should be selected ~half the time.
  AlertQueue queue(1);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(queue.Add(Alert(0, "s")).ok());
  const auto config = MakeConfig({0}, {2}, 2);
  util::Rng rng(11);
  std::map<int64_t, int> hits;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    const auto plan = PlanAuditPeriod(config, queue, rng);
    ASSERT_TRUE(plan.ok());
    for (const auto& alert : plan->selected) ++hits[alert.alert_id];
  }
  for (const auto& [id, count] : hits) {
    EXPECT_NEAR(count / static_cast<double>(trials), 0.5, 0.02)
        << "alert " << id;
  }
}

TEST(PlanAuditPeriodTest, TypeCountMismatchRejected) {
  AlertQueue queue(3);
  const auto config = MakeConfig({0, 1}, {1, 1}, 2);
  util::Rng rng(1);
  EXPECT_FALSE(PlanAuditPeriod(config, queue, rng).ok());
}

TEST(PlanPeriodFromMixtureTest, DrawsOrderingsByProbability) {
  AlertQueue queue(2);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(queue.Add(Alert(0, "s")).ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(queue.Add(Alert(1, "s")).ok());
  const std::vector<std::vector<int>> orderings = {{0, 1}, {1, 0}};
  const std::vector<double> probabilities = {0.8, 0.2};
  util::Rng rng(3);
  int first = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const auto plan = PlanPeriodFromMixture(orderings, probabilities, {2, 2},
                                            {1, 1}, 3, queue, rng);
    ASSERT_TRUE(plan.ok());
    if (plan->ordering == orderings[0]) ++first;
  }
  EXPECT_NEAR(first / static_cast<double>(trials), 0.8, 0.02);
}

TEST(PlanPeriodFromMixtureTest, RejectsEmptyMixture) {
  AlertQueue queue(1);
  util::Rng rng(1);
  EXPECT_FALSE(PlanPeriodFromMixture({}, {}, {1}, {1}, 1, queue, rng).ok());
}

}  // namespace
}  // namespace auditgame::audit
