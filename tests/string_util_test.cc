#include "util/string_util.h"

#include <gtest/gtest.h>

namespace auditgame::util {
namespace {

TEST(JoinTest, Ints) {
  EXPECT_EQ(JoinInts({1, 2, 3}, ", "), "1, 2, 3");
  EXPECT_EQ(JoinInts({}, ", "), "");
  EXPECT_EQ(JoinInts({-4}, ","), "-4");
}

TEST(JoinTest, DoublesWithPrecision) {
  EXPECT_EQ(JoinDoubles({0.35659, 0.378}, ", ", 4), "0.3566, 0.3780");
  EXPECT_EQ(JoinDoubles({1.0}, ",", 2), "1.00");
}

TEST(JoinTest, Strings) {
  EXPECT_EQ(JoinStrings({"a", "b"}, "-"), "a-b");
}

TEST(FormatTest, IntVectorMatchesPaperNotation) {
  EXPECT_EQ(FormatIntVector({4, 4, 3, 3}), "[4, 4, 3, 3]");
  EXPECT_EQ(FormatIntVector({}), "[]");
}

TEST(FormatTest, DoubleVector) {
  EXPECT_EQ(FormatDoubleVector({0.5, 0.25}, 2), "[0.50, 0.25]");
}

TEST(TrimTest, RemovesWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(SplitTest, BasicSplit) {
  const auto parts = Split("a:b:c", ':');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, TrailingDelimiterYieldsEmptyField) {
  const auto parts = Split("a,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(SplitTest, EmptyString) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

}  // namespace
}  // namespace auditgame::util
