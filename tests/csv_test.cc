#include "util/csv.h"

#include <sstream>

#include <gtest/gtest.h>

namespace auditgame::util {
namespace {

TEST(CsvWriterTest, PlainRow) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.WriteRow({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriterTest, QuotesFieldsWithCommas) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.WriteRow({"x,y", "plain"});
  EXPECT_EQ(out.str(), "\"x,y\",plain\n");
}

TEST(CsvWriterTest, EscapesQuotes) {
  EXPECT_EQ(CsvWriter::Escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriterTest, QuotesNewlines) {
  EXPECT_EQ(CsvWriter::Escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriterTest, FormatDoubleRoundTrips) {
  EXPECT_EQ(CsvWriter::FormatDouble(1.5), "1.5");
  EXPECT_EQ(CsvWriter::FormatDouble(-0.4517), "-0.4517");
  EXPECT_EQ(CsvWriter::FormatDouble(0), "0");
}

TEST(SplitCsvLineTest, PlainFields) {
  const auto fields = SplitCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitCsvLineTest, QuotedFieldWithComma) {
  const auto fields = SplitCsvLine("\"x,y\",z");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "x,y");
  EXPECT_EQ(fields[1], "z");
}

TEST(SplitCsvLineTest, EscapedQuote) {
  const auto fields = SplitCsvLine("\"say \"\"hi\"\"\"");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(SplitCsvLineTest, EmptyFields) {
  const auto fields = SplitCsvLine("a,,b,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(CsvRoundTripTest, WriteThenSplit) {
  std::ostringstream out;
  CsvWriter writer(out);
  const std::vector<std::string> row = {"plain", "with,comma", "with\"quote"};
  writer.WriteRow(row);
  std::string line = out.str();
  line.pop_back();  // strip newline
  EXPECT_EQ(SplitCsvLine(line), row);
}

}  // namespace
}  // namespace auditgame::util
