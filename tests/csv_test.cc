#include "util/csv.h"

#include <cstdlib>
#include <sstream>

#include <gtest/gtest.h>

namespace auditgame::util {
namespace {

TEST(CsvWriterTest, PlainRow) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.WriteRow({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriterTest, QuotesFieldsWithCommas) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.WriteRow({"x,y", "plain"});
  EXPECT_EQ(out.str(), "\"x,y\",plain\n");
}

TEST(CsvWriterTest, EscapesQuotes) {
  EXPECT_EQ(CsvWriter::Escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriterTest, QuotesNewlines) {
  EXPECT_EQ(CsvWriter::Escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriterTest, FormatDoubleStaysCompact) {
  EXPECT_EQ(CsvWriter::FormatDouble(1.5), "1.5");
  EXPECT_EQ(CsvWriter::FormatDouble(-0.4517), "-0.4517");
  EXPECT_EQ(CsvWriter::FormatDouble(0), "0");
}

TEST(CsvWriterTest, FormatDoubleRoundTripsExactly) {
  // Values whose shortest decimal form needs 16-17 significant digits; the
  // old fixed %.10g lost them.
  for (double value : {0.1 + 0.2, 1.0 / 3.0, 2.0 / 7.0, 1e-17 + 1e-34,
                       123456789.123456789, -0.35659123456789012}) {
    const std::string text = CsvWriter::FormatDouble(value);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), value) << text;
  }
}

TEST(SplitCsvLineTest, PlainFields) {
  const auto fields = SplitCsvLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 3u);
  EXPECT_EQ((*fields)[0], "a");
  EXPECT_EQ((*fields)[2], "c");
}

TEST(SplitCsvLineTest, QuotedFieldWithComma) {
  const auto fields = SplitCsvLine("\"x,y\",z");
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 2u);
  EXPECT_EQ((*fields)[0], "x,y");
  EXPECT_EQ((*fields)[1], "z");
}

TEST(SplitCsvLineTest, EscapedQuote) {
  const auto fields = SplitCsvLine("\"say \"\"hi\"\"\"");
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 1u);
  EXPECT_EQ((*fields)[0], "say \"hi\"");
}

TEST(SplitCsvLineTest, EmptyFields) {
  const auto fields = SplitCsvLine("a,,b,");
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 4u);
  EXPECT_EQ((*fields)[1], "");
  EXPECT_EQ((*fields)[3], "");
}

TEST(SplitCsvLineTest, UnterminatedQuoteIsAnError) {
  // A quote left open at end of line used to yield a silently truncated
  // field; it must surface as InvalidArgument.
  const auto fields = SplitCsvLine("\"unterminated");
  ASSERT_FALSE(fields.ok());
  EXPECT_EQ(fields.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(SplitCsvLine("a,\"x,y").ok());
  EXPECT_FALSE(SplitCsvLine("a,\"he said \"\"hi").ok());
  // A quote closed right at the end of the line is fine.
  EXPECT_TRUE(SplitCsvLine("a,\"x,y\"").ok());
}

TEST(CsvRoundTripTest, WriteThenSplit) {
  std::ostringstream out;
  CsvWriter writer(out);
  const std::vector<std::string> row = {"plain", "with,comma", "with\"quote"};
  writer.WriteRow(row);
  std::string line = out.str();
  line.pop_back();  // strip newline
  const auto fields = SplitCsvLine(line);
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, row);
}

}  // namespace
}  // namespace auditgame::util
