#include "core/brute_force.h"

#include <gtest/gtest.h>

#include "core/game_lp.h"
#include "data/syn_a.h"
#include "tests/test_util.h"
#include "util/combinatorics.h"

namespace auditgame::core {
namespace {

using testutil::MakeTinyGame;

TEST(BruteForceTest, TinyGameOptimumIsZero) {
  const GameInstance instance = MakeTinyGame();
  const auto result = SolveBruteForce(instance, 3.0);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->objective, 0.0, 1e-9);
  EXPECT_TRUE(result->policy.Validate(2).ok());
}

TEST(BruteForceTest, ReproducesTableIIIAtBudgetTwo) {
  const auto instance = data::MakeSynA();
  ASSERT_TRUE(instance.ok());
  const auto result = SolveBruteForce(*instance, 2.0);
  ASSERT_TRUE(result.ok());
  // Paper Table III row 1: objective 12.2945 at thresholds [1,1,1,1]; our
  // exact-convolution estimator gives 12.2457 (within 0.5%).
  EXPECT_NEAR(result->objective, 12.2945, 0.08);
  EXPECT_EQ(result->thresholds, (std::vector<int>{1, 1, 1, 1}));
}

TEST(BruteForceTest, ReproducesTableIIIAtBudgetTen) {
  const auto instance = data::MakeSynA();
  ASSERT_TRUE(instance.ok());
  const auto result = SolveBruteForce(*instance, 10.0);
  ASSERT_TRUE(result.ok());
  // Paper: -2.1314 at [3,3,3,3].
  EXPECT_NEAR(result->objective, -2.1314, 0.08);
  EXPECT_EQ(result->thresholds, (std::vector<int>{3, 3, 3, 3}));
}

TEST(BruteForceTest, ObjectiveDecreasesWithBudget) {
  const auto instance = data::MakeSynA();
  ASSERT_TRUE(instance.ok());
  double previous = 1e18;
  for (double budget : {2.0, 6.0, 10.0}) {
    const auto result = SolveBruteForce(*instance, budget);
    ASSERT_TRUE(result.ok());
    EXPECT_LT(result->objective, previous);
    previous = result->objective;
  }
}

TEST(BruteForceTest, SearchSpaceAccounting) {
  const auto instance = data::MakeSynA();
  ASSERT_TRUE(instance.ok());
  const auto result = SolveBruteForce(*instance, 2.0);
  ASSERT_TRUE(result.ok());
  // prod (J_t + 1) = 12 * 10 * 8 * 8.
  EXPECT_EQ(result->search_space, 7680u);
  EXPECT_LE(result->vectors_evaluated, result->search_space);
  EXPECT_GT(result->vectors_evaluated, 0u);
}

TEST(BruteForceTest, SumConstraintPrunesSearch) {
  const auto instance = data::MakeSynA();
  ASSERT_TRUE(instance.ok());
  BruteForceOptions no_prune;
  no_prune.require_sum_at_least_budget = false;
  const auto pruned = SolveBruteForce(*instance, 20.0);
  const auto unpruned = SolveBruteForce(*instance, 20.0, no_prune);
  ASSERT_TRUE(pruned.ok());
  ASSERT_TRUE(unpruned.ok());
  EXPECT_LT(pruned->vectors_evaluated, unpruned->vectors_evaluated);
  // Pruning never removes the optimum (a vector with sum < B wastes budget).
  EXPECT_NEAR(pruned->objective, unpruned->objective, 1e-9);
}

TEST(BruteForceTest, InfeasibleBudgetFails) {
  const GameInstance instance = MakeTinyGame();
  // Upper bounds are 2 + 2 = 4 < budget -> no vector satisfies sum >= B.
  const auto result = SolveBruteForce(instance, 100.0);
  EXPECT_FALSE(result.ok());
}

TEST(BruteForceTest, OptimumIsLowerBoundForAnyThresholdVector) {
  const auto instance = data::MakeSynA();
  ASSERT_TRUE(instance.ok());
  const auto compiled = Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  const auto brute = SolveBruteForce(*instance, 6.0);
  ASSERT_TRUE(brute.ok());
  auto detection = DetectionModel::Create(*instance, 6.0);
  ASSERT_TRUE(detection.ok());
  for (const std::vector<double>& thresholds :
       {std::vector<double>{2, 2, 2, 2}, std::vector<double>{6, 0, 0, 0},
        std::vector<double>{1, 2, 3, 4}}) {
    const auto full = SolveFullGameLp(*compiled, *detection, thresholds);
    ASSERT_TRUE(full.ok());
    EXPECT_GE(full->objective, brute->objective - 1e-9);
  }
}

}  // namespace
}  // namespace auditgame::core
