// End-to-end tests crossing module boundaries:
//  * analytic detection probabilities vs. empirical audit simulation,
//  * the full data -> game -> solver -> policy evaluation pipeline,
//  * consistency of the solvers with each other on real instances.
#include <cmath>

#include <gtest/gtest.h>

#include "audit/executor.h"
#include "core/brute_force.h"
#include "core/cggs.h"
#include "core/detection.h"
#include "core/game_lp.h"
#include "core/ishm.h"
#include "core/policy.h"
#include "data/credit.h"
#include "data/emr.h"
#include "data/syn_a.h"
#include "util/random.h"

namespace auditgame {
namespace {

// The analytic Pal (Eq. 1, inclusive-attack semantics) must match the
// detection frequency measured by replaying the audit executor on sampled
// days. This ties core::DetectionModel to audit::SimulateDay, two
// independent implementations of the recourse semantics.
TEST(IntegrationTest, AnalyticDetectionMatchesSimulation) {
  const auto instance = data::MakeSynA();
  ASSERT_TRUE(instance.ok());
  const double budget = 6.0;
  const std::vector<double> thresholds = {2.0, 2.0, 2.0, 2.0};
  const std::vector<int> ordering = {3, 1, 0, 2};

  core::DetectionModel::Options options;
  options.semantics = core::DetectionModel::Semantics::kInclusiveAttack;
  auto model = core::DetectionModel::Create(*instance, budget, options);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->SetThresholds(thresholds).ok());
  const auto pal = model->DetectionProbabilities(ordering);
  ASSERT_TRUE(pal.ok());

  audit::AuditConfiguration config;
  config.ordering = ordering;
  config.thresholds = thresholds;
  config.audit_costs = instance->audit_costs;
  config.budget = budget;

  util::Rng rng(20240101);
  const int days = 60000;
  for (int attack_type : {0, 2}) {
    int detected = 0;
    for (int day = 0; day < days; ++day) {
      const std::vector<int> benign =
          prob::SampleJoint(instance->alert_distributions, rng);
      const auto outcome = audit::SimulateDay(config, benign, attack_type, rng);
      ASSERT_TRUE(outcome.ok());
      if (outcome->attack_detected) ++detected;
    }
    const double empirical = detected / static_cast<double>(days);
    EXPECT_NEAR(empirical, (*pal)[attack_type], 0.01)
        << "attack type " << attack_type;
  }
}

// A deterred adversary (expected utility <= 0 for every victim) should also
// look deterred when utilities are recomputed from first principles.
TEST(IntegrationTest, DeterrenceIsConsistentWithUtilities) {
  const auto instance = data::MakeCreditGame();
  ASSERT_TRUE(instance.ok());
  const auto compiled = core::Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  const double budget = 250.0;
  auto detection = core::DetectionModel::Create(*instance, budget);
  ASSERT_TRUE(detection.ok());

  core::IshmOptions ishm_options;
  ishm_options.step_size = 0.2;
  auto evaluator = core::MakeCggsEvaluator(*compiled, *detection);
  const auto result = core::SolveIshm(*instance, evaluator, ishm_options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->objective, 0.0, 1e-6);

  // Mixed detection probabilities under the found policy must make every
  // victim's expected utility non-positive.
  const auto mixed =
      core::MixedDetectionProbabilities(*detection, result->policy);
  ASSERT_TRUE(mixed.ok());
  for (const auto& group : compiled->groups) {
    for (const auto& victim : group.victims) {
      EXPECT_LE(core::AdversaryUtility(victim, *mixed), 1e-6);
    }
  }
}

// CGGS upper-bounds the full LP (it solves a restricted master), and both
// must agree with direct policy evaluation.
TEST(IntegrationTest, SolverHierarchyOnEmrGame) {
  data::EmrConfig config;
  config.num_employees = 15;
  config.num_patients = 15;
  const auto instance = data::MakeEmrGame(config);
  ASSERT_TRUE(instance.ok());
  const auto compiled = core::Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  const double budget = 40.0;
  auto detection = core::DetectionModel::Create(*instance, budget);
  ASSERT_TRUE(detection.ok());

  std::vector<double> thresholds(static_cast<size_t>(instance->num_types()));
  for (int t = 0; t < instance->num_types(); ++t) {
    thresholds[static_cast<size_t>(t)] =
        0.3 * instance->alert_distributions[t].Mean();
  }
  // Round to whole audits.
  for (double& b : thresholds) b = std::floor(b);

  const auto cggs = core::SolveCggs(*compiled, *detection, thresholds);
  ASSERT_TRUE(cggs.ok());
  const auto eval = core::EvaluatePolicy(*compiled, *detection, cggs->policy);
  ASSERT_TRUE(eval.ok());
  EXPECT_NEAR(eval->auditor_loss, cggs->objective, 1e-6);

  // Any single-ordering policy is no better than the CGGS mixture.
  const auto single =
      core::SolveRestrictedGameLp(*compiled, *detection,
                                  {cggs->policy.orderings.front()});
  ASSERT_TRUE(single.ok());
  EXPECT_LE(cggs->objective, single->objective + 1e-9);
}

// Brute force is the global optimum: ISHM (any eps) and CGGS variants can
// never beat it on Syn A.
TEST(IntegrationTest, NoSolverBeatsBruteForce) {
  const auto instance = data::MakeSynA();
  ASSERT_TRUE(instance.ok());
  const auto compiled = core::Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  const double budget = 8.0;
  const auto brute = core::SolveBruteForce(*instance, budget);
  ASSERT_TRUE(brute.ok());
  for (double eps : {0.1, 0.3, 0.5}) {
    auto detection = core::DetectionModel::Create(*instance, budget);
    ASSERT_TRUE(detection.ok());
    core::IshmOptions options;
    options.step_size = eps;
    const auto full = core::SolveIshm(
        *instance, core::MakeFullLpEvaluator(*compiled, *detection), options);
    ASSERT_TRUE(full.ok());
    EXPECT_GE(full->objective, brute->objective - 1e-9) << "eps " << eps;
    const auto cggs = core::SolveIshm(
        *instance, core::MakeCggsEvaluator(*compiled, *detection), options);
    ASSERT_TRUE(cggs.ok());
    EXPECT_GE(cggs->objective, brute->objective - 1e-7) << "eps " << eps;
  }
}

// The EMR pipeline end to end: world generation -> rule labeling -> game
// assembly -> solving -> a valid, evaluable policy whose loss decreases
// with budget.
TEST(IntegrationTest, EmrLossDecreasesWithBudget) {
  data::EmrConfig config;
  config.num_employees = 12;
  config.num_patients = 12;
  const auto instance = data::MakeEmrGame(config);
  ASSERT_TRUE(instance.ok());
  const auto compiled = core::Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  double previous = 1e18;
  for (double budget : {10.0, 40.0, 120.0}) {
    auto detection = core::DetectionModel::Create(*instance, budget);
    ASSERT_TRUE(detection.ok());
    core::IshmOptions options;
    options.step_size = 0.3;
    const auto result = core::SolveIshm(
        *instance, core::MakeCggsEvaluator(*compiled, *detection), options);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->objective, previous + 1e-9) << "budget " << budget;
    previous = result->objective;
    EXPECT_TRUE(result->policy.Validate(instance->num_types()).ok());
  }
}

}  // namespace
}  // namespace auditgame
