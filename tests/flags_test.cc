#include "util/flags.h"

#include <gtest/gtest.h>

namespace auditgame::util {
namespace {

std::vector<char*> MakeArgv(std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  return argv;
}

TEST(FlagParserTest, DefaultsApply) {
  FlagParser parser;
  parser.Define("budget", "10", "audit budget");
  std::vector<std::string> args = {"prog"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(parser.GetInt("budget"), 10);
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser parser;
  parser.Define("eps", "0.1", "step size");
  std::vector<std::string> args = {"prog", "--eps=0.25"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_DOUBLE_EQ(parser.GetDouble("eps"), 0.25);
}

TEST(FlagParserTest, SpaceSyntax) {
  FlagParser parser;
  parser.Define("name", "x", "a name");
  std::vector<std::string> args = {"prog", "--name", "hello"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(parser.GetString("name"), "hello");
}

TEST(FlagParserTest, BooleanForm) {
  FlagParser parser;
  parser.Define("verbose", "false", "chatty output");
  std::vector<std::string> args = {"prog", "--verbose"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(parser.GetBool("verbose"));
}

TEST(FlagParserTest, UnknownFlagRejected) {
  FlagParser parser;
  parser.Define("known", "1", "known flag");
  std::vector<std::string> args = {"prog", "--unknown=2"};
  auto argv = MakeArgv(args);
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagParserTest, HelpRequested) {
  FlagParser parser;
  parser.Define("x", "1", "something");
  std::vector<std::string> args = {"prog", "--help"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(parser.help_requested());
  EXPECT_NE(parser.HelpString("prog").find("--x"), std::string::npos);
}

TEST(FlagParserTest, DoubleList) {
  FlagParser parser;
  parser.Define("eps", "0.1,0.2,0.3", "step sizes");
  std::vector<std::string> args = {"prog"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  const auto values = parser.GetDoubleList("eps");
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[1], 0.2);
}

TEST(FlagParserTest, IntList) {
  FlagParser parser;
  parser.Define("budgets", "2,4,6", "budgets");
  std::vector<std::string> args = {"prog", "--budgets=10,20"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  const auto values = parser.GetIntList("budgets");
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], 10);
  EXPECT_EQ(values[1], 20);
}

TEST(FlagParserTest, PositionalArgumentRejected) {
  FlagParser parser;
  std::vector<std::string> args = {"prog", "positional"};
  auto argv = MakeArgv(args);
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(ParseFullIntTest, AcceptsWholeTokensOnly) {
  EXPECT_EQ(ParseFullInt("12").value(), 12);
  EXPECT_EQ(ParseFullInt("-7").value(), -7);
  EXPECT_EQ(ParseFullInt("+3").value(), 3);
  EXPECT_FALSE(ParseFullInt("12abc").ok());
  EXPECT_FALSE(ParseFullInt("abc").ok());
  EXPECT_FALSE(ParseFullInt("").ok());
  EXPECT_FALSE(ParseFullInt("1.5").ok());
  EXPECT_FALSE(ParseFullInt(" 12").ok());
  EXPECT_FALSE(ParseFullInt("12 ").ok());
  EXPECT_FALSE(ParseFullInt("99999999999999999999").ok());
}

TEST(ParseFullDoubleTest, AcceptsWholeTokensOnly) {
  EXPECT_DOUBLE_EQ(ParseFullDouble("0.25").value(), 0.25);
  EXPECT_DOUBLE_EQ(ParseFullDouble("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseFullDouble("7").value(), 7.0);
  EXPECT_FALSE(ParseFullDouble("0.25x").ok());
  EXPECT_FALSE(ParseFullDouble("abc").ok());
  EXPECT_FALSE(ParseFullDouble("").ok());
  EXPECT_FALSE(ParseFullDouble(" 0.5").ok());
  EXPECT_FALSE(ParseFullDouble("1.5.3").ok());
}

TEST(ParseFullDoubleTest, RangeEdges) {
  // Underflow to a subnormal sets ERANGE but the value is representable.
  EXPECT_DOUBLE_EQ(ParseFullDouble("1e-310").value(), 1e-310);
  EXPECT_FALSE(ParseFullDouble("1e999").ok());  // overflow
  // Non-finite tokens defeat every (lo, hi) range guard downstream.
  EXPECT_FALSE(ParseFullDouble("nan").ok());
  EXPECT_FALSE(ParseFullDouble("inf").ok());
  EXPECT_FALSE(ParseFullDouble("-inf").ok());
}

// The typed accessors must not silently coerce malformed values ("12abc"
// used to read as 12, "abc" as 0); they terminate with a message naming
// the flag.
TEST(FlagParserDeathTest, MalformedIntExitsWithFlagName) {
  FlagParser parser;
  parser.Define("budget", "10", "audit budget");
  std::vector<std::string> args = {"prog", "--budget=12abc"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EXIT(parser.GetInt("budget"), ::testing::ExitedWithCode(2),
              "invalid value for --budget");
}

TEST(FlagParserDeathTest, MalformedDoubleExitsWithFlagName) {
  FlagParser parser;
  parser.Define("eps", "0.1", "step size");
  std::vector<std::string> args = {"prog", "--eps=abc"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EXIT(parser.GetDouble("eps"), ::testing::ExitedWithCode(2),
              "invalid value for --eps");
}

TEST(FlagParserDeathTest, MalformedListElementExitsWithFlagName) {
  FlagParser parser;
  parser.Define("budgets", "2,4", "budgets");
  std::vector<std::string> args = {"prog", "--budgets=2,x,6"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EXIT(parser.GetIntList("budgets"), ::testing::ExitedWithCode(2),
              "invalid value for --budgets");
  std::vector<std::string> dargs = {"prog", "--budgets=2,0.5y"};
  auto dargv = MakeArgv(dargs);
  ASSERT_TRUE(parser.Parse(static_cast<int>(dargv.size()), dargv.data()).ok());
  EXPECT_EXIT(parser.GetDoubleList("budgets"), ::testing::ExitedWithCode(2),
              "invalid value for --budgets");
}

TEST(FlagParserTest, EmptyValueYieldsEmptyLists) {
  FlagParser parser;
  parser.Define("thresholds", "", "optional thresholds");
  std::vector<std::string> args = {"prog"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(parser.GetDoubleList("thresholds").empty());
  EXPECT_TRUE(parser.GetIntList("thresholds").empty());
}

}  // namespace
}  // namespace auditgame::util
