#include "util/flags.h"

#include <gtest/gtest.h>

namespace auditgame::util {
namespace {

std::vector<char*> MakeArgv(std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  return argv;
}

TEST(FlagParserTest, DefaultsApply) {
  FlagParser parser;
  parser.Define("budget", "10", "audit budget");
  std::vector<std::string> args = {"prog"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(parser.GetInt("budget"), 10);
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser parser;
  parser.Define("eps", "0.1", "step size");
  std::vector<std::string> args = {"prog", "--eps=0.25"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_DOUBLE_EQ(parser.GetDouble("eps"), 0.25);
}

TEST(FlagParserTest, SpaceSyntax) {
  FlagParser parser;
  parser.Define("name", "x", "a name");
  std::vector<std::string> args = {"prog", "--name", "hello"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(parser.GetString("name"), "hello");
}

TEST(FlagParserTest, BooleanForm) {
  FlagParser parser;
  parser.Define("verbose", "false", "chatty output");
  std::vector<std::string> args = {"prog", "--verbose"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(parser.GetBool("verbose"));
}

TEST(FlagParserTest, UnknownFlagRejected) {
  FlagParser parser;
  parser.Define("known", "1", "known flag");
  std::vector<std::string> args = {"prog", "--unknown=2"};
  auto argv = MakeArgv(args);
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagParserTest, HelpRequested) {
  FlagParser parser;
  parser.Define("x", "1", "something");
  std::vector<std::string> args = {"prog", "--help"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(parser.help_requested());
  EXPECT_NE(parser.HelpString("prog").find("--x"), std::string::npos);
}

TEST(FlagParserTest, DoubleList) {
  FlagParser parser;
  parser.Define("eps", "0.1,0.2,0.3", "step sizes");
  std::vector<std::string> args = {"prog"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  const auto values = parser.GetDoubleList("eps");
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[1], 0.2);
}

TEST(FlagParserTest, IntList) {
  FlagParser parser;
  parser.Define("budgets", "2,4,6", "budgets");
  std::vector<std::string> args = {"prog", "--budgets=10,20"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  const auto values = parser.GetIntList("budgets");
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], 10);
  EXPECT_EQ(values[1], 20);
}

TEST(FlagParserTest, PositionalArgumentRejected) {
  FlagParser parser;
  std::vector<std::string> args = {"prog", "positional"};
  auto argv = MakeArgv(args);
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

}  // namespace
}  // namespace auditgame::util
