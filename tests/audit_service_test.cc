#include "service/audit_service.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/syn_a.h"
#include "tests/test_util.h"

namespace auditgame::service {
namespace {

using Source = AuditService::Source;

AuditServiceOptions FastOptions() {
  AuditServiceOptions options;
  options.budgets = {2.0, 3.0};
  options.solver_options.ishm.step_size = 0.25;
  options.num_threads = 2;
  return options;
}

// Rescale one type's pmf slightly; amplitude ~ total variation drift.
std::vector<prob::CountDistribution> Perturb(
    const std::vector<prob::CountDistribution>& dists, double amplitude) {
  std::vector<prob::CountDistribution> out;
  for (const auto& dist : dists) {
    std::vector<double> pmf;
    for (int z = dist.min_value(); z <= dist.max_value(); ++z) {
      // Tilt mass toward the low end of the support.
      const double tilt =
          1.0 + amplitude * (dist.max_value() == dist.min_value()
                                 ? 0.0
                                 : 1.0 - 2.0 *
                                       static_cast<double>(z - dist.min_value()) /
                                       (dist.max_value() - dist.min_value()));
      pmf.push_back(dist.Pmf(z) * tilt);
    }
    out.push_back(*prob::CountDistribution::FromPmf(dist.min_value(),
                                                    std::move(pmf)));
  }
  return out;
}

TEST(AuditServiceTest, FirstCycleIsColdSecondIsIdenticalCacheHit) {
  AuditService service(testutil::MakeTinyGame(), FastOptions());
  const auto first = service.RunCycle();
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_EQ(first->policies.size(), 2u);
  for (const auto& policy : first->policies) {
    EXPECT_EQ(policy.source, Source::kColdSolve);
    EXPECT_EQ(policy.drift, 0.0);
  }

  // No distribution update: the same fingerprints must be served from the
  // cache, bit-for-bit.
  const auto second = service.RunCycle();
  ASSERT_TRUE(second.ok()) << second.status();
  for (size_t i = 0; i < second->policies.size(); ++i) {
    const auto& a = first->policies[i];
    const auto& b = second->policies[i];
    EXPECT_EQ(b.source, Source::kCache);
    EXPECT_EQ(b.result.objective, a.result.objective);
    EXPECT_EQ(b.result.thresholds, a.result.thresholds);
    EXPECT_EQ(b.result.policy.orderings, a.result.policy.orderings);
    EXPECT_EQ(b.result.policy.probabilities, a.result.policy.probabilities);
  }
  const auto stats = service.cache_stats();
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 2);
}

TEST(AuditServiceTest, SmallDriftWarmStartsAndStaysNearOptimal) {
  const auto syn_a = data::MakeSynA();
  ASSERT_TRUE(syn_a.ok());
  AuditServiceOptions options;
  options.budgets = {10.0};
  options.solver_options.ishm.step_size = 0.2;
  AuditService service(*syn_a, options);
  ASSERT_TRUE(service.RunCycle().ok());

  const auto drifted = Perturb(syn_a->alert_distributions, 0.05);
  ASSERT_TRUE(service.UpdateAlertDistributions(drifted).ok());
  const auto cycle = service.RunCycle();
  ASSERT_TRUE(cycle.ok()) << cycle.status();
  const auto& policy = cycle->policies[0];
  EXPECT_EQ(policy.source, Source::kWarmSolve);
  EXPECT_GT(policy.drift, 0.0);
  EXPECT_LE(policy.drift, options.warm_start_max_drift);

  // The warm solve must track a cold solve of the same drifted instance.
  core::GameInstance drifted_instance = *syn_a;
  drifted_instance.alert_distributions = drifted;
  AuditService cold_service(drifted_instance, options);
  const auto cold = cold_service.RunCycle();
  ASSERT_TRUE(cold.ok());
  EXPECT_NEAR(policy.result.objective, cold->policies[0].result.objective,
              0.05);
}

TEST(AuditServiceTest, LargeDriftFallsBackToColdSolve) {
  AuditServiceOptions options = FastOptions();
  options.warm_start_max_drift = 0.02;
  AuditService service(testutil::MakeMediumGame(), options);
  ASSERT_TRUE(service.RunCycle().ok());

  const auto drifted = Perturb(service.instance().alert_distributions, 0.6);
  ASSERT_TRUE(service.UpdateAlertDistributions(drifted).ok());
  const auto cycle = service.RunCycle();
  ASSERT_TRUE(cycle.ok()) << cycle.status();
  for (const auto& policy : cycle->policies) {
    EXPECT_EQ(policy.source, Source::kColdSolve);
    EXPECT_GT(policy.drift, options.warm_start_max_drift);
  }
}

TEST(AuditServiceTest, RevisitedDistributionsHitTheCacheDespiteDrift) {
  AuditService service(testutil::MakeTinyGame(), FastOptions());
  const auto baseline = service.instance().alert_distributions;
  ASSERT_TRUE(service.RunCycle().ok());

  ASSERT_TRUE(
      service.UpdateAlertDistributions(Perturb(baseline, 0.1)).ok());
  ASSERT_TRUE(service.RunCycle().ok());

  // Returning to the exact baseline must be a pure cache hit.
  ASSERT_TRUE(service.UpdateAlertDistributions(baseline).ok());
  const auto cycle = service.RunCycle();
  ASSERT_TRUE(cycle.ok());
  for (const auto& policy : cycle->policies) {
    EXPECT_EQ(policy.source, Source::kCache);
  }
}

TEST(AuditServiceTest, ZeroMaxDriftDisablesWarmSolvesEntirely) {
  AuditServiceOptions options = FastOptions();
  options.warm_start_max_drift = 0.0;
  options.cache_capacity = 1;  // one entry: the second budget evicts the first
  AuditService service(testutil::MakeTinyGame(), options);
  ASSERT_TRUE(service.RunCycle().ok());
  // Unchanged distributions, but the evicted budget misses the cache with
  // drift exactly 0 — it must cold-solve, not warm-start.
  const auto cycle = service.RunCycle();
  ASSERT_TRUE(cycle.ok());
  for (const auto& policy : cycle->policies) {
    EXPECT_NE(policy.source, AuditService::Source::kWarmSolve);
  }
}

TEST(AuditServiceTest, RejectsMismatchedDistributionUpdate) {
  AuditService service(testutil::MakeTinyGame(), FastOptions());
  const auto before = service.instance().alert_distributions;
  std::vector<prob::CountDistribution> wrong_size = {
      prob::CountDistribution::Constant(2)};
  const auto status = service.UpdateAlertDistributions(wrong_size);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  // Rejected updates leave the served distributions untouched.
  EXPECT_EQ(service.instance().alert_distributions.size(), before.size());
  EXPECT_TRUE(service.RunCycle().ok());
}

TEST(AuditServiceTest, MeasureDriftIsMaxTotalVariation) {
  const auto a = testutil::MakeTinyGame().alert_distributions;
  EXPECT_EQ(AuditService::MeasureDrift(a, a), 0.0);
  auto b = a;
  b[0] = prob::CountDistribution::Constant(3);  // disjoint support vs Constant(2)
  EXPECT_NEAR(AuditService::MeasureDrift(a, b), 1.0, 1e-12);
  std::vector<prob::CountDistribution> shorter(a.begin(), a.begin() + 1);
  EXPECT_EQ(AuditService::MeasureDrift(a, shorter), 1.0);
}

}  // namespace
}  // namespace auditgame::service
