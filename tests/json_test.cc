#include "util/json.h"

#include <gtest/gtest.h>

namespace auditgame::util {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(JsonValue::Parse("null")->is_null());
  EXPECT_TRUE(JsonValue::Parse("true")->as_bool());
  EXPECT_FALSE(JsonValue::Parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("3.5")->as_number(), 3.5);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-17")->as_number(), -17.0);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("1e3")->as_number(), 1000.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonParseTest, Escapes) {
  EXPECT_EQ(JsonValue::Parse(R"("a\"b\\c\nd\te")")->as_string(),
            "a\"b\\c\nd\te");
  EXPECT_EQ(JsonValue::Parse(R"("A")")->as_string(), "A");
  EXPECT_EQ(JsonValue::Parse(R"("é")")->as_string(), "\xC3\xA9");
}

TEST(JsonParseTest, UnicodeEscapes) {
  EXPECT_EQ(JsonValue::Parse("\"\\u0041\"")->as_string(), "A");
  EXPECT_EQ(JsonValue::Parse("\"\\u00e9\"")->as_string(), "\xC3\xA9");
  EXPECT_EQ(JsonValue::Parse("\"\\u20ac\"")->as_string(), "\xE2\x82\xAC");
}

TEST(JsonParseTest, SurrogatePairsDecodeToUtf8) {
  // U+1F600 (emoji) as the pair \ud83d\ude00 = F0 9F 98 80 in UTF-8.
  EXPECT_EQ(JsonValue::Parse("\"\\ud83d\\ude00\"")->as_string(),
            "\xF0\x9F\x98\x80");
  // U+10437 as \uD801\uDC37 = F0 90 90 B7 (case-insensitive hex).
  EXPECT_EQ(JsonValue::Parse("\"\\uD801\\uDC37\"")->as_string(),
            "\xF0\x90\x90\xB7");
  EXPECT_EQ(JsonValue::Parse("\"x\\ud83d\\ude00y\"")->as_string(),
            "x\xF0\x9F\x98\x80y");
}

TEST(JsonParseTest, LoneSurrogatesAreRejected) {
  EXPECT_FALSE(JsonValue::Parse(R"("\ud83d")").ok());    // high, end of string
  EXPECT_FALSE(JsonValue::Parse(R"("\ud83dxy")").ok());  // high, no \u after
  // High surrogate followed by a \u escape that is not a low surrogate.
  EXPECT_FALSE(JsonValue::Parse(R"("\ud83d\u0041")").ok());
  EXPECT_FALSE(JsonValue::Parse(R"("\ude00")").ok());        // lone low
  EXPECT_FALSE(JsonValue::Parse(R"("\ud83d\ud83d")").ok());  // high + high
}

TEST(JsonParseTest, MalformedUnicodeEscapesAreRejected) {
  EXPECT_FALSE(JsonValue::Parse(R"("\u12")").ok());    // truncated
  EXPECT_FALSE(JsonValue::Parse(R"("\u12g4")").ok());  // non-hex digit
  // strtol used to tolerate these; the explicit digit check must not.
  EXPECT_FALSE(JsonValue::Parse(R"("\u+123")").ok());
  EXPECT_FALSE(JsonValue::Parse(R"("\u 123")").ok());
}

TEST(JsonDumpTest, SurrogatePairRoundTrip) {
  const auto parsed = JsonValue::Parse("\"pre \\ud83d\\ude00 post\"");
  ASSERT_TRUE(parsed.ok());
  const auto reparsed = JsonValue::Parse(parsed->Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->as_string(), parsed->as_string());
  EXPECT_EQ(reparsed->as_string(), "pre \xF0\x9F\x98\x80 post");
}

TEST(JsonParseTest, NestedStructures) {
  const auto value =
      JsonValue::Parse(R"({"a": [1, 2, {"b": true}], "c": null})");
  ASSERT_TRUE(value.ok());
  ASSERT_TRUE(value->is_object());
  const JsonValue* a = value->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[1].as_number(), 2.0);
  EXPECT_TRUE(a->as_array()[2].Find("b")->as_bool());
  EXPECT_TRUE(value->Find("c")->is_null());
}

TEST(JsonParseTest, WhitespaceTolerant) {
  const auto value = JsonValue::Parse("  { \"x\" :\n[ 1 ,\t2 ] }  ");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->Find("x")->as_array().size(), 2u);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("tru").ok());
  EXPECT_FALSE(JsonValue::Parse("1 2").ok());
  EXPECT_FALSE(JsonValue::Parse("nan").ok());
}

TEST(JsonDumpTest, CompactRoundTrip) {
  JsonValue::Object object;
  object["name"] = JsonValue("audit");
  object["n"] = JsonValue(3);
  object["p"] = JsonValue(0.25);
  object["flags"] = JsonValue(JsonValue::Array{JsonValue(true), JsonValue()});
  const JsonValue value(std::move(object));
  const std::string text = value.Dump();
  const auto reparsed = JsonValue::Parse(text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->GetString("name").value(), "audit");
  EXPECT_DOUBLE_EQ(reparsed->GetNumber("n").value(), 3.0);
  EXPECT_DOUBLE_EQ(reparsed->GetNumber("p").value(), 0.25);
}

TEST(JsonDumpTest, IntegersPrintWithoutDecimals) {
  EXPECT_EQ(JsonValue(42).Dump(), "42");
  EXPECT_EQ(JsonValue(-3).Dump(), "-3");
}

TEST(JsonDumpTest, StringsAreEscaped) {
  EXPECT_EQ(JsonValue("a\"b\nc").Dump(), R"("a\"b\nc")");
}

TEST(JsonDumpTest, PrettyPrintIsReparseable) {
  const auto original =
      JsonValue::Parse(R"({"a":[1,2],"b":{"c":"d"},"e":3.125})");
  ASSERT_TRUE(original.ok());
  const std::string pretty = original->Dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  const auto reparsed = JsonValue::Parse(pretty);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Dump(), original->Dump());
}

TEST(JsonAccessorsTest, TypedGettersValidate) {
  const auto value = JsonValue::Parse(R"({"n": 1, "s": "x", "b": true})");
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(value->GetNumber("n").value(), 1.0);
  EXPECT_EQ(value->GetString("s").value(), "x");
  EXPECT_TRUE(value->GetBool("b").value());
  EXPECT_FALSE(value->GetNumber("s").ok());
  EXPECT_FALSE(value->GetString("missing").ok());
  EXPECT_EQ(value->Find("missing"), nullptr);
}

TEST(JsonParseTest, DoubleRoundTripPrecision) {
  const double original = 0.35659123456789;
  const auto reparsed = JsonValue::Parse(JsonValue(original).Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_DOUBLE_EQ(reparsed->as_number(), original);
}

}  // namespace
}  // namespace auditgame::util
