#include "core/game.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace auditgame::core {
namespace {

using testutil::MakeMediumGame;
using testutil::MakeTinyGame;

TEST(GameInstanceTest, ValidInstancePasses) {
  EXPECT_TRUE(MakeTinyGame().Validate().ok());
  EXPECT_TRUE(MakeMediumGame().Validate().ok());
}

TEST(GameInstanceTest, RejectsEmptyTypes) {
  GameInstance instance;
  EXPECT_FALSE(instance.Validate().ok());
}

TEST(GameInstanceTest, RejectsSizeMismatches) {
  GameInstance instance = MakeTinyGame();
  instance.type_names.pop_back();
  EXPECT_FALSE(instance.Validate().ok());
}

TEST(GameInstanceTest, RejectsNonPositiveAuditCost) {
  GameInstance instance = MakeTinyGame();
  instance.audit_costs[0] = 0.0;
  EXPECT_FALSE(instance.Validate().ok());
}

TEST(GameInstanceTest, RejectsBadAttackProbability) {
  GameInstance instance = MakeTinyGame();
  instance.adversaries[0].attack_probability = 1.5;
  EXPECT_FALSE(instance.Validate().ok());
}

TEST(GameInstanceTest, RejectsTypeProbsSumAboveOne) {
  GameInstance instance = MakeTinyGame();
  instance.adversaries[0].victims[0].type_probs = {0.7, 0.7};
  EXPECT_FALSE(instance.Validate().ok());
}

TEST(GameInstanceTest, RejectsNegativePenalty) {
  GameInstance instance = MakeTinyGame();
  instance.adversaries[0].victims[0].penalty = -1.0;
  EXPECT_FALSE(instance.Validate().ok());
}

TEST(GameInstanceTest, RejectsVictimlessAdversaryWithoutOptOut) {
  GameInstance instance = MakeTinyGame();
  instance.adversaries[0].victims.clear();
  instance.adversaries[0].can_opt_out = false;
  EXPECT_FALSE(instance.Validate().ok());
}

TEST(AdversaryUtilityTest, MatchesEquation3) {
  VictimProfile victim;
  victim.type_probs = {0.5, 0.5};
  victim.benefit = 10.0;
  victim.penalty = 4.0;
  victim.attack_cost = 1.0;
  // Pat = 0.5*0.2 + 0.5*0.6 = 0.4.
  // Ua = -0.4*4 + 0.6*10 - 1 = -1.6 + 6 - 1 = 3.4.
  EXPECT_NEAR(AdversaryUtility(victim, {0.2, 0.6}), 3.4, 1e-12);
}

TEST(AdversaryUtilityTest, NoDetectionGivesFullBenefit) {
  VictimProfile victim;
  victim.type_probs = {1.0};
  victim.benefit = 5.0;
  victim.penalty = 7.0;
  victim.attack_cost = 0.5;
  EXPECT_NEAR(AdversaryUtility(victim, {0.0}), 4.5, 1e-12);
}

TEST(AdversaryUtilityTest, CertainDetectionGivesPenalty) {
  VictimProfile victim;
  victim.type_probs = {1.0};
  victim.benefit = 5.0;
  victim.penalty = 7.0;
  victim.attack_cost = 0.5;
  EXPECT_NEAR(AdversaryUtility(victim, {1.0}), -7.5, 1e-12);
}

TEST(AdversaryUtilityTest, BenignVictimAlwaysCostsAttackCost) {
  VictimProfile victim;
  victim.type_probs = {0.0, 0.0};
  victim.benefit = 0.0;
  victim.penalty = 4.0;
  victim.attack_cost = 0.4;
  EXPECT_NEAR(AdversaryUtility(victim, {0.9, 0.9}), -0.4, 1e-12);
}

TEST(CompileTest, MergesIdenticalAdversaries) {
  const auto compiled = Compile(MakeMediumGame());
  ASSERT_TRUE(compiled.ok());
  // Adversaries 0 and 1 merge; 2 and 3 are distinct.
  EXPECT_EQ(compiled->groups.size(), 3u);
  double total_weight = 0.0;
  size_t total_members = 0;
  for (const auto& group : compiled->groups) {
    total_weight += group.weight;
    total_members += group.members.size();
  }
  EXPECT_NEAR(total_weight, 4.0, 1e-12);
  EXPECT_EQ(total_members, 4u);
  // One group must have weight 2 (the merged pair).
  bool found_merged = false;
  for (const auto& group : compiled->groups) {
    if (group.members.size() == 2) {
      EXPECT_NEAR(group.weight, 2.0, 1e-12);
      found_merged = true;
    }
  }
  EXPECT_TRUE(found_merged);
}

TEST(CompileTest, DeduplicatesVictimsWithinAdversary) {
  GameInstance instance = MakeTinyGame();
  // Duplicate the first victim three times.
  instance.adversaries[0].victims.push_back(instance.adversaries[0].victims[0]);
  instance.adversaries[0].victims.push_back(instance.adversaries[0].victims[0]);
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  ASSERT_EQ(compiled->groups.size(), 1u);
  EXPECT_EQ(compiled->groups[0].victims.size(), 2u);
}

TEST(CompileTest, DropsZeroProbabilityAdversaries) {
  GameInstance instance = MakeTinyGame();
  Adversary ghost = instance.adversaries[0];
  ghost.attack_probability = 0.0;
  instance.adversaries.push_back(ghost);
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->groups.size(), 1u);
  EXPECT_NEAR(compiled->groups[0].weight, 1.0, 1e-12);
}

TEST(CompileTest, AllZeroProbabilityFails) {
  GameInstance instance = MakeTinyGame();
  instance.adversaries[0].attack_probability = 0.0;
  EXPECT_FALSE(Compile(instance).ok());
}

TEST(CompileTest, NumRowsCountsVictims) {
  const auto compiled = Compile(MakeMediumGame());
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->num_rows(), 2 + 2 + 1);
}

TEST(CompileTest, OptOutDistinguishesGroups) {
  GameInstance instance = MakeTinyGame();
  Adversary no_optout = instance.adversaries[0];
  no_optout.can_opt_out = false;
  instance.adversaries.push_back(no_optout);
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->groups.size(), 2u);
}

}  // namespace
}  // namespace auditgame::core
