#include "core/ishm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/game_lp.h"
#include "data/syn_a.h"
#include "tests/test_util.h"

namespace auditgame::core {
namespace {

using testutil::MakeTinyGame;

TEST(IshmTest, RejectsBadStepSize) {
  const GameInstance instance = MakeTinyGame();
  auto evaluator = [](const std::vector<double>&)
      -> util::StatusOr<ThresholdEvaluation> {
    return ThresholdEvaluation{};
  };
  IshmOptions options;
  options.step_size = 0.0;
  EXPECT_FALSE(SolveIshm(instance, evaluator, options).ok());
  options.step_size = 1.0;
  EXPECT_FALSE(SolveIshm(instance, evaluator, options).ok());
}

TEST(IshmTest, FindsOptimumOnTinyGame) {
  const GameInstance instance = MakeTinyGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  IshmOptions options;
  options.step_size = 0.25;
  const auto result = SolveIshm(
      instance, MakeFullLpEvaluator(*compiled, *detection), options);
  ASSERT_TRUE(result.ok());
  // Full deterrence is achievable (policy_test): optimal loss 0.
  EXPECT_NEAR(result->objective, 0.0, 1e-9);
  EXPECT_GT(result->stats.evaluations, 0);
  EXPECT_GE(result->stats.evaluations, result->stats.distinct_evaluations);
}

TEST(IshmTest, TracksAgainstBruteForceOnSynA) {
  const auto instance = data::MakeSynA();
  ASSERT_TRUE(instance.ok());
  const auto compiled = Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  for (double budget : {6.0, 12.0}) {
    const auto brute = SolveBruteForce(*instance, budget);
    ASSERT_TRUE(brute.ok());
    auto detection = DetectionModel::Create(*instance, budget);
    ASSERT_TRUE(detection.ok());
    IshmOptions options;
    options.step_size = 0.1;
    const auto ishm = SolveIshm(
        *instance, MakeFullLpEvaluator(*compiled, *detection), options);
    ASSERT_TRUE(ishm.ok());
    // ISHM can only be worse than the optimum, and per Table VI should be
    // within ~1% at eps = 0.1.
    EXPECT_GE(ishm->objective, brute->objective - 1e-9);
    EXPECT_LE(std::fabs(ishm->objective - brute->objective),
              0.01 * std::fabs(brute->objective) + 1e-6)
        << "budget " << budget;
  }
}

TEST(IshmTest, SmallerEpsNeverFewerEvaluations) {
  const auto instance = data::MakeSynA();
  ASSERT_TRUE(instance.ok());
  const auto compiled = Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(*instance, 8.0);
  ASSERT_TRUE(detection.ok());
  int64_t previous = 0;
  for (double eps : {0.5, 0.25, 0.1}) {
    IshmOptions options;
    options.step_size = eps;
    const auto result = SolveIshm(
        *instance, MakeFullLpEvaluator(*compiled, *detection), options);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->stats.evaluations, previous);
    previous = result->stats.evaluations;
  }
}

TEST(IshmTest, EffectiveThresholdsAreWholeAudits) {
  const auto instance = data::MakeSynA();
  ASSERT_TRUE(instance.ok());
  const auto compiled = Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(*instance, 10.0);
  ASSERT_TRUE(detection.ok());
  IshmOptions options;
  options.step_size = 0.15;
  const auto result = SolveIshm(
      *instance, MakeFullLpEvaluator(*compiled, *detection), options);
  ASSERT_TRUE(result.ok());
  for (int t = 0; t < instance->num_types(); ++t) {
    const double audits = result->effective_thresholds[static_cast<size_t>(t)] /
                          instance->audit_costs[static_cast<size_t>(t)];
    EXPECT_NEAR(audits, std::round(audits), 1e-9);
  }
}

TEST(IshmTest, CachedEvaluationsAreNotRecomputed) {
  const auto instance = data::MakeSynA();
  ASSERT_TRUE(instance.ok());
  const auto compiled = Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(*instance, 8.0);
  ASSERT_TRUE(detection.ok());
  int calls = 0;
  auto counting_evaluator =
      [&](const std::vector<double>& thresholds)
      -> util::StatusOr<ThresholdEvaluation> {
    ++calls;
    return MakeFullLpEvaluator(*compiled, *detection)(thresholds);
  };
  IshmOptions options;
  options.step_size = 0.2;
  const auto result = SolveIshm(*instance, counting_evaluator, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(calls, result->stats.distinct_evaluations);
  EXPECT_LT(result->stats.distinct_evaluations, result->stats.evaluations);
}

TEST(IshmTest, PolicyMatchesReportedObjective) {
  const auto instance = data::MakeSynA();
  ASSERT_TRUE(instance.ok());
  const auto compiled = Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(*instance, 10.0);
  ASSERT_TRUE(detection.ok());
  IshmOptions options;
  options.step_size = 0.2;
  const auto result = SolveIshm(
      *instance, MakeFullLpEvaluator(*compiled, *detection), options);
  ASSERT_TRUE(result.ok());
  const auto eval = EvaluatePolicy(*compiled, *detection, result->policy);
  ASSERT_TRUE(eval.ok());
  EXPECT_NEAR(eval->auditor_loss, result->objective, 1e-6);
}

}  // namespace
}  // namespace auditgame::core
