#include "core/ishm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/game_lp.h"
#include "data/syn_a.h"
#include "tests/test_util.h"

namespace auditgame::core {
namespace {

using testutil::MakeTinyGame;

TEST(IshmTest, RejectsBadStepSize) {
  const GameInstance instance = MakeTinyGame();
  auto evaluator = [](const std::vector<double>&)
      -> util::StatusOr<ThresholdEvaluation> {
    return ThresholdEvaluation{};
  };
  IshmOptions options;
  options.step_size = 0.0;
  EXPECT_FALSE(SolveIshm(instance, evaluator, options).ok());
  options.step_size = 1.0;
  EXPECT_FALSE(SolveIshm(instance, evaluator, options).ok());
  // NaN slips through naive range comparisons and would spin the sweep
  // forever.
  options.step_size = std::nan("");
  EXPECT_FALSE(SolveIshm(instance, evaluator, options).ok());
}

TEST(IshmTest, FindsOptimumOnTinyGame) {
  const GameInstance instance = MakeTinyGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  IshmOptions options;
  options.step_size = 0.25;
  const auto result = SolveIshm(
      instance, MakeFullLpEvaluator(*compiled, *detection), options);
  ASSERT_TRUE(result.ok());
  // Full deterrence is achievable (policy_test): optimal loss 0.
  EXPECT_NEAR(result->objective, 0.0, 1e-9);
  EXPECT_GT(result->stats.evaluations, 0);
  EXPECT_GE(result->stats.evaluations, result->stats.distinct_evaluations);
}

TEST(IshmTest, TracksAgainstBruteForceOnSynA) {
  const auto instance = data::MakeSynA();
  ASSERT_TRUE(instance.ok());
  const auto compiled = Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  for (double budget : {6.0, 12.0}) {
    const auto brute = SolveBruteForce(*instance, budget);
    ASSERT_TRUE(brute.ok());
    auto detection = DetectionModel::Create(*instance, budget);
    ASSERT_TRUE(detection.ok());
    IshmOptions options;
    options.step_size = 0.1;
    const auto ishm = SolveIshm(
        *instance, MakeFullLpEvaluator(*compiled, *detection), options);
    ASSERT_TRUE(ishm.ok());
    // ISHM can only be worse than the optimum, and per Table VI should be
    // within ~1% at eps = 0.1.
    EXPECT_GE(ishm->objective, brute->objective - 1e-9);
    EXPECT_LE(std::fabs(ishm->objective - brute->objective),
              0.01 * std::fabs(brute->objective) + 1e-6)
        << "budget " << budget;
  }
}

TEST(IshmTest, SmallerEpsNeverFewerEvaluations) {
  const auto instance = data::MakeSynA();
  ASSERT_TRUE(instance.ok());
  const auto compiled = Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(*instance, 8.0);
  ASSERT_TRUE(detection.ok());
  int64_t previous = 0;
  for (double eps : {0.5, 0.25, 0.1}) {
    IshmOptions options;
    options.step_size = eps;
    const auto result = SolveIshm(
        *instance, MakeFullLpEvaluator(*compiled, *detection), options);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->stats.evaluations, previous);
    previous = result->stats.evaluations;
  }
}

TEST(IshmTest, EffectiveThresholdsAreWholeAudits) {
  const auto instance = data::MakeSynA();
  ASSERT_TRUE(instance.ok());
  const auto compiled = Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(*instance, 10.0);
  ASSERT_TRUE(detection.ok());
  IshmOptions options;
  options.step_size = 0.15;
  const auto result = SolveIshm(
      *instance, MakeFullLpEvaluator(*compiled, *detection), options);
  ASSERT_TRUE(result.ok());
  for (int t = 0; t < instance->num_types(); ++t) {
    const double audits = result->effective_thresholds[static_cast<size_t>(t)] /
                          instance->audit_costs[static_cast<size_t>(t)];
    EXPECT_NEAR(audits, std::round(audits), 1e-9);
  }
}

TEST(IshmTest, CachedEvaluationsAreNotRecomputed) {
  const auto instance = data::MakeSynA();
  ASSERT_TRUE(instance.ok());
  const auto compiled = Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(*instance, 8.0);
  ASSERT_TRUE(detection.ok());
  int calls = 0;
  auto counting_evaluator =
      [&](const std::vector<double>& thresholds)
      -> util::StatusOr<ThresholdEvaluation> {
    ++calls;
    return MakeFullLpEvaluator(*compiled, *detection)(thresholds);
  };
  IshmOptions options;
  options.step_size = 0.2;
  const auto result = SolveIshm(*instance, counting_evaluator, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(calls, result->stats.distinct_evaluations);
  EXPECT_LT(result->stats.distinct_evaluations, result->stats.evaluations);
}

TEST(IshmTest, WarmStartRejectsWrongSizeSeed) {
  const GameInstance instance = MakeTinyGame();
  auto evaluator = [](const std::vector<double>&)
      -> util::StatusOr<ThresholdEvaluation> {
    return ThresholdEvaluation{};
  };
  IshmOptions options;
  options.initial_thresholds = {1.0};  // instance has 2 types
  EXPECT_FALSE(SolveIshm(instance, evaluator, options).ok());
}

TEST(IshmTest, WarmStartFromOptimumMatchesColdResult) {
  const auto instance = data::MakeSynA();
  ASSERT_TRUE(instance.ok());
  const auto compiled = Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(*instance, 10.0);
  ASSERT_TRUE(detection.ok());
  IshmOptions options;
  options.step_size = 0.2;
  const auto cold = SolveIshm(
      *instance, MakeFullLpEvaluator(*compiled, *detection), options);
  ASSERT_TRUE(cold.ok());

  // Re-solving the same instance seeded at the cold optimum with local
  // (single-type) repair must find nothing better, return the same
  // objective, and do far less work.
  IshmOptions warm_options = options;
  warm_options.initial_thresholds = cold->effective_thresholds;
  warm_options.max_subset_size = 1;
  const auto warm = SolveIshm(
      *instance, MakeFullLpEvaluator(*compiled, *detection), warm_options);
  ASSERT_TRUE(warm.ok());
  EXPECT_NEAR(warm->objective, cold->objective, 1e-9);
  EXPECT_LT(warm->stats.evaluations, cold->stats.evaluations);
}

TEST(IshmTest, WarmSeedIsEvaluatedBeforeAnyShrink) {
  const GameInstance instance = MakeTinyGame();
  std::vector<std::vector<double>> probes;
  auto recording_evaluator =
      [&probes](const std::vector<double>& thresholds)
      -> util::StatusOr<ThresholdEvaluation> {
    probes.push_back(thresholds);
    ThresholdEvaluation eval;
    eval.objective = 1.0;  // flat landscape: nothing ever improves
    return eval;
  };
  IshmOptions options;
  options.step_size = 0.5;
  options.initial_thresholds = {1.0, 2.0};
  const auto result = SolveIshm(instance, recording_evaluator, options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(probes.empty());
  EXPECT_EQ(probes.front(), (std::vector<double>{1.0, 2.0}));
  // On a flat landscape the seed itself must be the reported optimum.
  EXPECT_EQ(result->objective, 1.0);
  EXPECT_EQ(result->effective_thresholds, (std::vector<double>{1.0, 2.0}));
}

TEST(IshmTest, WarmSeedIsClampedToUpperBounds) {
  const GameInstance instance = MakeTinyGame();  // upper bounds C_t * 2 = 2
  std::vector<double> first_probe;
  auto recording_evaluator =
      [&first_probe](const std::vector<double>& thresholds)
      -> util::StatusOr<ThresholdEvaluation> {
    if (first_probe.empty()) first_probe = thresholds;
    ThresholdEvaluation eval;
    eval.objective = 1.0;
    return eval;
  };
  IshmOptions options;
  options.step_size = 0.5;
  options.initial_thresholds = {100.0, -3.0};
  ASSERT_TRUE(SolveIshm(instance, recording_evaluator, options).ok());
  EXPECT_EQ(first_probe, (std::vector<double>{2.0, 0.0}));
}

TEST(IshmTest, PolicyMatchesReportedObjective) {
  const auto instance = data::MakeSynA();
  ASSERT_TRUE(instance.ok());
  const auto compiled = Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(*instance, 10.0);
  ASSERT_TRUE(detection.ok());
  IshmOptions options;
  options.step_size = 0.2;
  const auto result = SolveIshm(
      *instance, MakeFullLpEvaluator(*compiled, *detection), options);
  ASSERT_TRUE(result.ok());
  const auto eval = EvaluatePolicy(*compiled, *detection, result->policy);
  ASSERT_TRUE(eval.ok());
  EXPECT_NEAR(eval->auditor_loss, result->objective, 1e-6);
}

}  // namespace
}  // namespace auditgame::core
