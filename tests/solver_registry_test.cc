#include "solver/registry.h"

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/cggs.h"
#include "core/game_lp.h"
#include "core/ishm.h"
#include "data/syn_a.h"
#include "tests/test_util.h"

namespace auditgame::solver {
namespace {

void ExpectSamePolicy(const core::AuditPolicy& actual,
                      const core::AuditPolicy& expected) {
  EXPECT_EQ(actual.orderings, expected.orderings);
  EXPECT_EQ(actual.probabilities, expected.probabilities);
  EXPECT_EQ(actual.thresholds, expected.thresholds);
  EXPECT_EQ(actual.budget, expected.budget);
}

TEST(SolverRegistryTest, AllBuiltinNamesResolve) {
  const std::vector<std::string> names = RegisteredNames();
  for (const char* expected :
       {"brute-force", "full-lp", "cggs", "ishm-full", "ishm-cggs"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected << " not registered";
    auto created = Create(expected);
    ASSERT_TRUE(created.ok()) << created.status();
    EXPECT_EQ((*created)->Name(), expected);
  }
}

TEST(SolverRegistryTest, UnknownNameIsNotFound) {
  const auto result = Create("no-such-solver");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kNotFound);
  // The error lists the registered names to make typos self-diagnosing.
  EXPECT_NE(result.status().message().find("ishm-cggs"), std::string::npos);
}

TEST(SolverRegistryTest, DuplicateRegistrationFails) {
  auto factory = [](const SolverOptions&) -> std::unique_ptr<Solver> {
    return nullptr;
  };
  EXPECT_FALSE(Register("ishm-cggs", factory).ok());
  EXPECT_FALSE(Register("", factory).ok());
}

TEST(SolverRegistryTest, SearchingBackendsRequireInstance) {
  const core::GameInstance instance = testutil::MakeTinyGame();
  const auto compiled = core::Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = core::DetectionModel::Create(instance, 2.0);
  ASSERT_TRUE(detection.ok());
  for (const char* name : {"brute-force", "ishm-full", "ishm-cggs"}) {
    auto created = Create(name);
    ASSERT_TRUE(created.ok());
    const auto result =
        (*created)->Solve(*compiled, *detection, SolveRequest());
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  }
}

TEST(SolverRegistryTest, FixedThresholdBackendsRequireThresholds) {
  const core::GameInstance instance = testutil::MakeTinyGame();
  const auto compiled = core::Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = core::DetectionModel::Create(instance, 2.0);
  ASSERT_TRUE(detection.ok());
  for (const char* name : {"full-lp", "cggs"}) {
    auto created = Create(name);
    ASSERT_TRUE(created.ok());
    SolveRequest request;
    request.thresholds = {1.0};  // wrong arity
    const auto result = (*created)->Solve(*compiled, *detection, request);
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  }
}

// ---- Adapter-vs-direct equivalence on Syn A ------------------------------
// The adapters forward to the free functions with identical options and
// seeds, so every number must match bit-for-bit (EXPECT_EQ on doubles, not
// EXPECT_NEAR).

class AdapterEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto instance = data::MakeSynA();
    ASSERT_TRUE(instance.ok());
    instance_ = *std::move(instance);
    auto compiled = core::Compile(instance_);
    ASSERT_TRUE(compiled.ok());
    compiled_ = *std::move(compiled);
  }

  core::DetectionModel MakeDetection(double budget) {
    auto detection = core::DetectionModel::Create(instance_, budget);
    EXPECT_TRUE(detection.ok());
    return *std::move(detection);
  }

  core::GameInstance instance_;
  core::CompiledGame compiled_;
};

TEST_F(AdapterEquivalenceTest, BruteForceMatchesDirectCall) {
  const double budget = 6.0;
  const auto direct = core::SolveBruteForce(instance_, budget);
  ASSERT_TRUE(direct.ok());

  auto adapter = Create("brute-force");
  ASSERT_TRUE(adapter.ok());
  core::DetectionModel detection = MakeDetection(budget);
  SolveRequest request;
  request.instance = &instance_;
  const auto result = (*adapter)->Solve(compiled_, detection, request);
  ASSERT_TRUE(result.ok()) << result.status();

  EXPECT_EQ(result->objective, direct->objective);
  EXPECT_EQ(result->stats.vectors_evaluated, direct->vectors_evaluated);
  EXPECT_EQ(result->stats.search_space, direct->search_space);
  ExpectSamePolicy(result->policy, direct->policy);
}

TEST_F(AdapterEquivalenceTest, FullLpMatchesDirectCall) {
  const double budget = 8.0;
  const std::vector<double> thresholds = {3.0, 2.0, 2.0, 1.0};
  core::DetectionModel direct_detection = MakeDetection(budget);
  const auto direct =
      core::SolveFullGameLp(compiled_, direct_detection, thresholds);
  ASSERT_TRUE(direct.ok());

  auto adapter = Create("full-lp");
  ASSERT_TRUE(adapter.ok());
  core::DetectionModel detection = MakeDetection(budget);
  SolveRequest request;
  request.thresholds = thresholds;
  const auto result = (*adapter)->Solve(compiled_, detection, request);
  ASSERT_TRUE(result.ok()) << result.status();

  EXPECT_EQ(result->objective, direct->objective);
  ExpectSamePolicy(result->policy, direct->policy);
}

TEST_F(AdapterEquivalenceTest, CggsMatchesDirectCall) {
  const double budget = 8.0;
  const std::vector<double> thresholds = {3.0, 2.0, 2.0, 1.0};
  core::CggsOptions cggs_options;  // defaults, including seed = 7
  core::DetectionModel direct_detection = MakeDetection(budget);
  const auto direct =
      core::SolveCggs(compiled_, direct_detection, thresholds, cggs_options);
  ASSERT_TRUE(direct.ok());

  SolverOptions options;
  options.cggs = cggs_options;
  auto adapter = Create("cggs", options);
  ASSERT_TRUE(adapter.ok());
  core::DetectionModel detection = MakeDetection(budget);
  SolveRequest request;
  request.thresholds = thresholds;
  const auto result = (*adapter)->Solve(compiled_, detection, request);
  ASSERT_TRUE(result.ok()) << result.status();

  EXPECT_EQ(result->objective, direct->objective);
  EXPECT_EQ(result->stats.lp_solves, direct->lp_solves);
  EXPECT_EQ(result->stats.columns_generated, direct->columns_generated);
  ExpectSamePolicy(result->policy, direct->policy);
}

TEST_F(AdapterEquivalenceTest, IshmFullMatchesDirectCall) {
  const double budget = 6.0;
  core::IshmOptions ishm_options;
  ishm_options.step_size = 0.25;
  core::DetectionModel direct_detection = MakeDetection(budget);
  const auto direct = core::SolveIshm(
      instance_, core::MakeFullLpEvaluator(compiled_, direct_detection),
      ishm_options);
  ASSERT_TRUE(direct.ok());

  SolverOptions options;
  options.ishm = ishm_options;
  auto adapter = Create("ishm-full", options);
  ASSERT_TRUE(adapter.ok());
  core::DetectionModel detection = MakeDetection(budget);
  SolveRequest request;
  request.instance = &instance_;
  const auto result = (*adapter)->Solve(compiled_, detection, request);
  ASSERT_TRUE(result.ok()) << result.status();

  EXPECT_EQ(result->objective, direct->objective);
  EXPECT_EQ(result->thresholds, direct->effective_thresholds);
  EXPECT_EQ(result->stats.evaluations, direct->stats.evaluations);
  EXPECT_EQ(result->stats.distinct_evaluations,
            direct->stats.distinct_evaluations);
  EXPECT_EQ(result->stats.improvements, direct->stats.improvements);
  ExpectSamePolicy(result->policy, direct->policy);
}

TEST_F(AdapterEquivalenceTest, IshmCggsMatchesDirectCall) {
  const double budget = 10.0;
  core::IshmOptions ishm_options;
  ishm_options.step_size = 0.25;
  const core::CggsOptions cggs_options;  // default seed = 7
  core::DetectionModel direct_detection = MakeDetection(budget);
  const auto direct = core::SolveIshm(
      instance_,
      core::MakeCggsEvaluator(compiled_, direct_detection, cggs_options),
      ishm_options);
  ASSERT_TRUE(direct.ok());

  SolverOptions options;
  options.ishm = ishm_options;
  options.cggs = cggs_options;
  auto adapter = Create("ishm-cggs", options);
  ASSERT_TRUE(adapter.ok());
  core::DetectionModel detection = MakeDetection(budget);
  SolveRequest request;
  request.instance = &instance_;
  const auto result = (*adapter)->Solve(compiled_, detection, request);
  ASSERT_TRUE(result.ok()) << result.status();

  EXPECT_EQ(result->objective, direct->objective);
  EXPECT_EQ(result->thresholds, direct->effective_thresholds);
  EXPECT_EQ(result->stats.evaluations, direct->stats.evaluations);
  ExpectSamePolicy(result->policy, direct->policy);
}

}  // namespace
}  // namespace auditgame::solver
