#include "core/baselines.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "data/syn_a.h"
#include "tests/test_util.h"

namespace auditgame::core {
namespace {

using testutil::MakeMediumGame;
using testutil::MakeTinyGame;

TEST(PerTypeBenefitsTest, PicksDominantTypeMaximum) {
  const auto compiled = Compile(MakeMediumGame());
  ASSERT_TRUE(compiled.ok());
  const auto benefits = PerTypeBenefits(*compiled);
  ASSERT_EQ(benefits.size(), 3u);
  EXPECT_NEAR(benefits[0], 5.0, 1e-12);
  EXPECT_NEAR(benefits[1], 4.0, 1e-12);
  EXPECT_NEAR(benefits[2], 6.0, 1e-12);
}

TEST(GreedyBenefitTest, OrdersByDescendingBenefit) {
  const auto compiled = Compile(MakeMediumGame());
  ASSERT_TRUE(compiled.ok());
  const GameInstance instance = MakeMediumGame();
  auto detection = DetectionModel::Create(instance, 5.0);
  ASSERT_TRUE(detection.ok());
  const auto result = GreedyByBenefitBaseline(*compiled, *detection);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ordering, (std::vector<int>{2, 0, 1}));
  EXPECT_TRUE(result->policy.Validate(3).ok());
  EXPECT_EQ(result->policy.orderings.size(), 1u);
}

TEST(RandomOrderTest, UniformMixtureOverDistinctOrders) {
  const GameInstance instance = MakeMediumGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 5.0);
  ASSERT_TRUE(detection.ok());
  const auto result = RandomOrderBaseline(*compiled, *detection,
                                          {3.0, 3.0, 3.0}, 100, 42);
  ASSERT_TRUE(result.ok());
  // Only 3! = 6 orderings exist; sampling 100 without replacement caps out.
  EXPECT_EQ(result->policy.orderings.size(), 6u);
  for (double p : result->policy.probabilities) EXPECT_NEAR(p, 1.0 / 6, 1e-12);
}

TEST(RandomOrderTest, DeterministicGivenSeed) {
  const GameInstance instance = MakeMediumGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 5.0);
  ASSERT_TRUE(detection.ok());
  const auto a = RandomOrderBaseline(*compiled, *detection, {3, 3, 3}, 3, 7);
  const auto b = RandomOrderBaseline(*compiled, *detection, {3, 3, 3}, 3, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->auditor_loss, b->auditor_loss);
  EXPECT_EQ(a->policy.orderings, b->policy.orderings);
}

TEST(RandomThresholdTest, StatisticsAreConsistent) {
  const auto instance = data::MakeSynA();
  ASSERT_TRUE(instance.ok());
  const auto compiled = Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(*instance, 6.0);
  ASSERT_TRUE(detection.ok());
  const auto result =
      RandomThresholdBaseline(*instance, *compiled, *detection, 10, 11);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->draws, 10);
  EXPECT_LE(result->min_auditor_loss, result->mean_auditor_loss + 1e-9);
  EXPECT_GE(result->max_auditor_loss, result->mean_auditor_loss - 1e-9);
}

TEST(RandomThresholdTest, RejectsImpossibleBudget) {
  const GameInstance instance = MakeTinyGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 100.0);
  ASSERT_TRUE(detection.ok());
  EXPECT_FALSE(
      RandomThresholdBaseline(instance, *compiled, *detection, 5, 1).ok());
}

TEST(BaselinesTest, GameTheoreticSolutionDominatesBaselines) {
  // The core claim of Figures 1 and 2 in miniature: the optimal policy is
  // at least as good as every baseline on Syn A.
  const auto instance = data::MakeSynA();
  ASSERT_TRUE(instance.ok());
  const auto compiled = Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  const double budget = 8.0;
  const auto optimal = SolveBruteForce(*instance, budget);
  ASSERT_TRUE(optimal.ok());
  auto detection = DetectionModel::Create(*instance, budget);
  ASSERT_TRUE(detection.ok());

  const auto greedy = GreedyByBenefitBaseline(*compiled, *detection);
  ASSERT_TRUE(greedy.ok());
  EXPECT_LE(optimal->objective, greedy->auditor_loss + 1e-9);

  std::vector<double> policy_thresholds(optimal->thresholds.size());
  for (size_t t = 0; t < policy_thresholds.size(); ++t) {
    policy_thresholds[t] =
        optimal->thresholds[t] * instance->audit_costs[t];
  }
  const auto random_order = RandomOrderBaseline(*compiled, *detection,
                                                policy_thresholds, 24, 5);
  ASSERT_TRUE(random_order.ok());
  EXPECT_LE(optimal->objective, random_order->auditor_loss + 1e-9);

  const auto random_threshold =
      RandomThresholdBaseline(*instance, *compiled, *detection, 5, 9);
  ASSERT_TRUE(random_threshold.ok());
  EXPECT_LE(optimal->objective, random_threshold->mean_auditor_loss + 1e-9);
}

}  // namespace
}  // namespace auditgame::core
