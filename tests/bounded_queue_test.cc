// Tests for the shard request queue (server/bounded_queue.h): the bound
// (backpressure), FIFO batching, and the close-then-drain contract that
// graceful shutdown relies on. The concurrent cases double as the TSan
// surface for the queue.
#include "server/bounded_queue.h"

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace auditgame::server {
namespace {

TEST(BoundedQueueTest, TryPushFailsWhenFull) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // the backpressure signal
  EXPECT_EQ(queue.size(), 2u);

  std::vector<int> batch;
  ASSERT_TRUE(queue.PopBatch(10, &batch));
  EXPECT_EQ(batch, (std::vector<int>{1, 2}));
  EXPECT_TRUE(queue.TryPush(3));  // capacity freed
}

TEST(BoundedQueueTest, PopBatchRespectsMaxAndFifo) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.TryPush(i));
  std::vector<int> batch;
  ASSERT_TRUE(queue.PopBatch(3, &batch));
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2}));
  ASSERT_TRUE(queue.PopBatch(3, &batch));
  EXPECT_EQ(batch, (std::vector<int>{3, 4}));
}

TEST(BoundedQueueTest, CloseDrainsLeftoversThenSignalsExit) {
  BoundedQueue<int> queue(8);
  ASSERT_TRUE(queue.TryPush(1));
  ASSERT_TRUE(queue.TryPush(2));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(3));  // closed for producers immediately

  std::vector<int> batch;
  ASSERT_TRUE(queue.PopBatch(1, &batch));  // accepted work still drains
  EXPECT_EQ(batch, (std::vector<int>{1}));
  ASSERT_TRUE(queue.PopBatch(1, &batch));
  EXPECT_EQ(batch, (std::vector<int>{2}));
  EXPECT_FALSE(queue.PopBatch(1, &batch));  // drained: consumer exits
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> queue(4);
  std::atomic<bool> exited{false};
  std::thread consumer([&] {
    std::vector<int> batch;
    while (queue.PopBatch(4, &batch)) {
    }
    exited.store(true);
  });
  // The consumer is (very likely) blocked in PopBatch by now; Close() must
  // wake it without any item arriving.
  queue.Close();
  consumer.join();
  EXPECT_TRUE(exited.load());
}

TEST(BoundedQueueTest, ConcurrentProducersLoseNothingAccepted) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  BoundedQueue<int> queue(64);

  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        if (queue.TryPush(value)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
        // Full queue: the producer's item was rejected, not queued — the
        // real server answers `overloaded` here. Drop and move on.
      }
    });
  }

  std::set<int> received;
  std::thread consumer([&] {
    std::vector<int> batch;
    while (queue.PopBatch(16, &batch)) {
      ASSERT_LE(batch.size(), 16u);
      for (int value : batch) {
        EXPECT_TRUE(received.insert(value).second) << "duplicate " << value;
      }
    }
  });

  for (std::thread& producer : producers) producer.join();
  queue.Close();
  consumer.join();
  // Every accepted item arrives exactly once; rejected items never do.
  EXPECT_EQ(static_cast<int>(received.size()), accepted.load());
}

}  // namespace
}  // namespace auditgame::server
