// Tests for the cluster layer: HashRing placement properties (the
// determinism, spread and minimal-movement guarantees failover relies
// on) and end-to-end Router behavior over real loopback sockets — two
// in-process AuditServer backends behind one Router, correlation-id
// remapping, `backend_down` semantics, and the warm-failover path: a
// stopped backend's tenants re-route to their ring successor and are
// served from the mirrored (warm) state, with cycle numbers that keep
// increasing across the switch.
#include "server/router.h"

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "net/client.h"
#include "scenario/generator.h"
#include "server/audit_server.h"
#include "server/hash_ring.h"
#include "server/protocol.h"
#include "util/json.h"

namespace auditgame::server {
namespace {

std::string TenantName(int i) { return "tenant-" + std::to_string(i); }

TEST(HashRingTest, DeterministicPlacement) {
  HashRing a(128), b(128);
  for (int n = 0; n < 3; ++n) {
    a.AddNode(n, "backend-" + std::to_string(n));
    b.AddNode(n, "backend-" + std::to_string(n));
  }
  for (int i = 0; i < 1000; ++i) {
    const uint64_t point = HashRing::PointForTenant(TenantName(i));
    EXPECT_EQ(a.PrimaryFor(point), b.PrimaryFor(point));
    EXPECT_EQ(a.SuccessorFor(point), b.SuccessorFor(point));
  }
}

TEST(HashRingTest, SpreadStaysWithinImbalanceBound) {
  constexpr int kNodes = 3;
  constexpr int kTenants = 10000;
  HashRing ring(128);
  for (int n = 0; n < kNodes; ++n) {
    ring.AddNode(n, "backend-" + std::to_string(n));
  }
  std::vector<int> load(kNodes, 0);
  for (int i = 0; i < kTenants; ++i) {
    const int node = ring.PrimaryFor(HashRing::PointForTenant(TenantName(i)));
    ASSERT_GE(node, 0);
    ASSERT_LT(node, kNodes);
    ++load[node];
  }
  const double mean = static_cast<double>(kTenants) / kNodes;
  for (int n = 0; n < kNodes; ++n) {
    const double imbalance = (load[n] - mean) / mean;
    // 128 virtual nodes per backend keep every node within 15% of the
    // mean at this population — the capacity-planning envelope the
    // default is chosen for.
    EXPECT_LT(imbalance, 0.15) << "node " << n << " load " << load[n];
    EXPECT_GT(imbalance, -0.15) << "node " << n << " load " << load[n];
  }
}

TEST(HashRingTest, RemovalMovesOnlyTheRemovedNodesTenants) {
  constexpr int kNodes = 3;
  constexpr int kTenants = 10000;
  HashRing ring(128);
  for (int n = 0; n < kNodes; ++n) {
    ring.AddNode(n, "backend-" + std::to_string(n));
  }
  std::vector<int> before(kTenants);
  for (int i = 0; i < kTenants; ++i) {
    before[i] = ring.PrimaryFor(HashRing::PointForTenant(TenantName(i)));
  }
  ring.RemoveNode(2);
  int moved = 0;
  for (int i = 0; i < kTenants; ++i) {
    const int after = ring.PrimaryFor(HashRing::PointForTenant(TenantName(i)));
    ASSERT_NE(after, 2);
    if (before[i] != 2) {
      // The consistent-hashing contract: survivors' tenants do not move.
      EXPECT_EQ(after, before[i]) << TenantName(i);
    } else {
      ++moved;
    }
  }
  // Only the removed node's share (~1/3) re-routes.
  EXPECT_GT(moved, kTenants / 5);
  EXPECT_LT(moved, kTenants / 2);
}

TEST(HashRingTest, SuccessorIsADifferentLiveNode) {
  HashRing ring(128);
  ring.AddNode(0, "a");
  // With a single node there is nowhere to replicate.
  EXPECT_EQ(ring.SuccessorFor(HashRing::PointForTenant("t")), -1);
  ring.AddNode(1, "b");
  ring.AddNode(2, "c");
  for (int i = 0; i < 500; ++i) {
    const uint64_t point = HashRing::PointForTenant(TenantName(i));
    const int primary = ring.PrimaryFor(point);
    const int successor = ring.SuccessorFor(point);
    EXPECT_GE(successor, 0);
    EXPECT_NE(successor, primary) << TenantName(i);
  }
}

class RouterTest : public ::testing::Test {
 protected:
  void StartCluster(int num_backends, RouterOptions router_options = {}) {
    auto spec = scenario::SpecByName("uniform");
    ASSERT_TRUE(spec.ok());
    spec->num_types = 4;

    for (int b = 0; b < num_backends; ++b) {
      auto instance = scenario::Generate(*spec);
      ASSERT_TRUE(instance.ok());
      AuditServerOptions options;
      options.port = 0;
      options.num_shards = 2;
      options.service.budgets = {6.0};
      options.service.solver_options.ishm.step_size = 0.25;
      options.service.num_threads = 1;
      backends_.push_back(
          std::make_unique<AuditServer>(*std::move(instance), options));
      ASSERT_TRUE(backends_.back()->Start().ok());
      backend_threads_.emplace_back([server = backends_.back().get()] {
        util::Status run = server->Run();
        EXPECT_TRUE(run.ok()) << run;
      });
      router_options.backends.push_back(
          "127.0.0.1:" + std::to_string(backends_.back()->port()));
    }

    router_options.port = 0;
    // Tight retry cadence keeps the failover tests fast.
    router_options.channel.reconnect_backoff_min_ms = 10;
    router_options.channel.reconnect_backoff_max_ms = 100;
    router_ = std::make_unique<Router>(std::move(router_options));
    ASSERT_TRUE(router_->Start().ok());
    router_thread_ = std::thread([this] {
      util::Status run = router_->Run();
      EXPECT_TRUE(run.ok()) << run;
    });
  }

  void StopBackend(size_t b) {
    backends_[b]->RequestStop();
    if (backend_threads_[b].joinable()) backend_threads_[b].join();
  }

  void TearDown() override {
    if (router_ != nullptr) {
      router_->RequestStop();
      if (router_thread_.joinable()) router_thread_.join();
    }
    for (size_t b = 0; b < backends_.size(); ++b) StopBackend(b);
  }

  net::FrameClient Connect() {
    auto client =
        net::FrameClient::Connect("127.0.0.1", router_->port(), 5000);
    EXPECT_TRUE(client.ok()) << client.status();
    EXPECT_TRUE(client->SetReceiveTimeout(30000).ok());
    return std::move(client).value();
  }

  util::JsonValue Call(net::FrameClient& client, const std::string& payload) {
    auto response = client.Call(payload);
    EXPECT_TRUE(response.ok()) << response.status();
    if (!response.ok()) return util::JsonValue();
    auto doc = util::JsonValue::Parse(*response);
    EXPECT_TRUE(doc.ok()) << doc.status();
    return doc.ok() ? *std::move(doc) : util::JsonValue();
  }

  static std::string StatusOf(const util::JsonValue& doc) {
    auto status = doc.GetString("status");
    return status.ok() ? *status : "<missing>";
  }

  static int64_t IdOf(const util::JsonValue& doc) {
    auto id = doc.GetNumber("id");
    return id.ok() ? static_cast<int64_t>(*id) : -1;
  }

  std::vector<prob::CountDistribution> Baseline() {
    auto spec = scenario::SpecByName("uniform");
    EXPECT_TRUE(spec.ok());
    spec->num_types = 4;
    auto instance = scenario::Generate(*spec);
    EXPECT_TRUE(instance.ok());
    return instance->alert_distributions;
  }

  std::vector<std::unique_ptr<AuditServer>> backends_;
  std::vector<std::thread> backend_threads_;
  std::unique_ptr<Router> router_;
  std::thread router_thread_;
};

TEST_F(RouterTest, CorrelationIdsRoundTripThroughRemapping) {
  StartCluster(2);
  auto baseline = Baseline();
  auto client = Connect();

  // Client-side ids deliberately collide with nothing the router uses
  // internally (sub-ids are small and even/odd-coded); every response must
  // carry back exactly the id its request was sent with.
  for (int i = 0; i < 8; ++i) {
    const int64_t id = 900000 + 7 * i;
    const std::string tenant = TenantName(i);
    util::JsonValue ingest =
        Call(client, MakeIngestRequest(id, tenant, baseline));
    EXPECT_EQ(StatusOf(ingest), "ok");
    EXPECT_EQ(IdOf(ingest), id);
    util::JsonValue solve =
        Call(client, MakeSolveCycleRequest(id + 1, tenant));
    EXPECT_EQ(StatusOf(solve), "ok");
    EXPECT_EQ(IdOf(solve), id + 1);
    auto cycle = solve.GetNumber("cycle");
    ASSERT_TRUE(cycle.ok());
    EXPECT_EQ(static_cast<int64_t>(*cycle), 1);
  }
}

TEST_F(RouterTest, StatsAggregatesRouterAndBackendCounters) {
  StartCluster(2);
  auto client = Connect();
  util::JsonValue stats = Call(client, MakeStatsRequest(42));
  EXPECT_EQ(StatusOf(stats), "ok");
  EXPECT_EQ(IdOf(stats), 42);
  const util::JsonValue* router_section = stats.Find("router");
  ASSERT_NE(router_section, nullptr);
  auto live = router_section->GetNumber("live_backends");
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(static_cast<int>(*live), 2);
}

TEST_F(RouterTest, RequestsToDeadClusterAnswerBackendDown) {
  // One backend that is never started: port 1 on loopback is never
  // listening, so the live ring stays empty.
  RouterOptions options;
  options.backend_connect_wait_ms = 200;
  options.backends.push_back("127.0.0.1:1");
  options.port = 0;
  router_ = std::make_unique<Router>(std::move(options));
  ASSERT_TRUE(router_->Start().ok());
  router_thread_ = std::thread([this] {
    util::Status run = router_->Run();
    EXPECT_TRUE(run.ok()) << run;
  });

  auto client = Connect();
  util::JsonValue response =
      Call(client, MakeSolveCycleRequest(7, "tenant-0"));
  EXPECT_EQ(StatusOf(response), "backend_down");
  EXPECT_EQ(IdOf(response), 7);
}

TEST_F(RouterTest, FailoverServesTenantsWarmFromTheSuccessor) {
  StartCluster(2);
  auto baseline = Baseline();
  auto client = Connect();

  // A tenant owned by backend 0 (so stopping 0 forces its failover) whose
  // mirror therefore lives on backend 1.
  std::string tenant;
  for (int i = 0; i < 64; ++i) {
    if (router_->PrimaryBackendFor(TenantName(i)) == 0) {
      tenant = TenantName(i);
      break;
    }
  }
  ASSERT_FALSE(tenant.empty()) << "no tenant hashed to backend 0";
  EXPECT_EQ(router_->SuccessorBackendFor(tenant), 1);

  int64_t id = 1000;
  int64_t last_cycle = 0;
  for (int cycle = 0; cycle < 3; ++cycle) {
    util::JsonValue ingest =
        Call(client, MakeIngestRequest(++id, tenant, baseline));
    ASSERT_EQ(StatusOf(ingest), "ok");
    util::JsonValue solve = Call(client, MakeSolveCycleRequest(++id, tenant));
    ASSERT_EQ(StatusOf(solve), "ok");
    auto cycle_number = solve.GetNumber("cycle");
    ASSERT_TRUE(cycle_number.ok());
    EXPECT_GT(static_cast<int64_t>(*cycle_number), last_cycle);
    last_cycle = static_cast<int64_t>(*cycle_number);
  }

  StopBackend(0);

  // The channel notices the close within its poll granularity; retry
  // through the backend_down window until the survivor answers.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  bool served = false;
  while (std::chrono::steady_clock::now() < deadline) {
    util::JsonValue solve = Call(client, MakeSolveCycleRequest(++id, tenant));
    const std::string status = StatusOf(solve);
    if (status == "backend_down" || status == "overloaded") {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    ASSERT_EQ(status, "ok");
    auto cycle_number = solve.GetNumber("cycle");
    ASSERT_TRUE(cycle_number.ok());
    // The mirrored state answers: the cycle count survives the failover
    // (a cold survivor would restart at 1 and violate the order
    // contract)...
    EXPECT_GE(static_cast<int64_t>(*cycle_number), last_cycle);
    // ...and the policy is served from cache or a warm solve, not cold.
    const util::JsonValue* policies = solve.Find("policies");
    ASSERT_NE(policies, nullptr);
    ASSERT_TRUE(policies->is_array());
    ASSERT_FALSE(policies->as_array().empty());
    for (const util::JsonValue& policy : policies->as_array()) {
      auto source = policy.GetString("source");
      ASSERT_TRUE(source.ok());
      EXPECT_NE(*source, "cold_solve");
      EXPECT_NE(*source, "cold");
    }
    served = true;
    break;
  }
  EXPECT_TRUE(served) << "survivor never answered the failed-over tenant";

  // The router observed exactly one failover and saw warm traffic.
  util::JsonValue::Object report = router_->ReportBody();
  EXPECT_EQ(report.count("failovers"), 1u);
}

}  // namespace
}  // namespace auditgame::server
