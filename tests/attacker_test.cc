// Tests for the strategic attacker models (adversary/attacker.h):
// per-type attack utilities against the hand formula, exact best response
// against brute-force enumeration over alert types, byte-determinism of
// every model, quantal-response softmax properties, fictitious-play
// averaging, and the exploitability oracle — the exact solver's optimal
// policy leaves the best-responding attacker a ~0 (<= 1e-9) exploitability
// gap against a deterministic re-solve.
#include "adversary/attacker.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "core/detection.h"
#include "core/policy.h"
#include "gtest/gtest.h"
#include "scenario/generator.h"
#include "solver/engine.h"

namespace auditgame::adversary {
namespace {

core::GameInstance MakeInstance() {
  auto spec = scenario::SpecByName("uniform");
  EXPECT_TRUE(spec.ok());
  spec->num_types = 4;
  auto instance = scenario::Generate(*spec);
  EXPECT_TRUE(instance.ok());
  return std::move(*instance);
}

AttackerEconomics EconomicsOf(const core::GameInstance& instance) {
  auto economics = DeriveEconomics(instance);
  EXPECT_TRUE(economics.ok());
  return std::move(*economics);
}

/// Bit-for-bit equality of two distribution vectors (support + pmf doubles).
bool SameBits(const std::vector<prob::CountDistribution>& a,
              const std::vector<prob::CountDistribution>& b) {
  if (a.size() != b.size()) return false;
  for (size_t t = 0; t < a.size(); ++t) {
    if (a[t].min_value() != b[t].min_value()) return false;
    const std::vector<double>& pa = a[t].pmf_data();
    const std::vector<double>& pb = b[t].pmf_data();
    if (pa.size() != pb.size()) return false;
    if (!pa.empty() &&
        std::memcmp(pa.data(), pb.data(), pa.size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

/// The paper's Eq. 3 specialized to a single-type attack, written out by
/// hand so the test does not share code with the implementation.
double HandUtility(const AttackerEconomics& e, const std::vector<double>& pal,
                   int t) {
  const size_t i = static_cast<size_t>(t);
  return -pal[i] * e.penalties[i] + (1.0 - pal[i]) * e.benefits[i] -
         e.attack_costs[i];
}

/// Brute force over every alert type: the utility-maximizing type, or -1
/// when refraining (utility 0) beats them all. Ties break low.
int BruteForceBestType(const AttackerEconomics& e,
                       const std::vector<double>& pal) {
  int best = -1;
  double best_utility = 0.0;
  for (int t = 0; t < e.num_types(); ++t) {
    const double u = HandUtility(e, pal, t);
    if (u > best_utility) {
      best = t;
      best_utility = u;
    }
  }
  return best;
}

std::unique_ptr<Attacker> Make(const core::GameInstance& instance,
                               AttackerKind kind, double lambda = 4.0) {
  AttackerSpec spec;
  spec.kind = kind;
  spec.lambda = lambda;
  auto attacker =
      MakeAttacker(spec, instance.alert_distributions, EconomicsOf(instance));
  EXPECT_TRUE(attacker.ok()) << attacker.status();
  return std::move(*attacker);
}

TEST(AttackerEconomicsTest, PerTypeUtilitiesMatchHandFormula) {
  const core::GameInstance instance = MakeInstance();
  const AttackerEconomics economics = EconomicsOf(instance);
  const std::vector<double> pal = {0.1, 0.3, 0.6, 0.9};
  const std::vector<double> utilities = PerTypeAttackUtilities(economics, pal);
  ASSERT_EQ(utilities.size(), 4u);
  for (int t = 0; t < 4; ++t) {
    EXPECT_NEAR(utilities[static_cast<size_t>(t)],
                HandUtility(economics, pal, t), 1e-12)
        << "type " << t;
  }
}

TEST(AttackerEconomicsTest, BestAttackUtilityIsClampedMaximum) {
  const AttackerEconomics economics = EconomicsOf(MakeInstance());
  // Full detection everywhere: every attack pays -penalty - cost < 0, so
  // the best move is to refrain and the exploitability measure clamps at 0.
  const std::vector<double> all_audited(4, 1.0);
  EXPECT_EQ(BestAttackUtility(economics, all_audited), 0.0);
  const std::vector<double> none_audited(4, 0.0);
  double expected = 0.0;
  for (int t = 0; t < 4; ++t) {
    expected = std::max(expected, HandUtility(economics, none_audited, t));
  }
  EXPECT_NEAR(BestAttackUtility(economics, none_audited), expected, 1e-12);
}

TEST(AttackerEconomicsTest, DeriveEconomicsRejectsDegenerateInstances) {
  core::GameInstance empty;
  EXPECT_FALSE(DeriveEconomics(empty).ok());
}

TEST(BestResponseAttackerTest, MatchesBruteForceEnumeration) {
  const core::GameInstance instance = MakeInstance();
  const AttackerEconomics economics = EconomicsOf(instance);
  auto attacker = Make(instance, AttackerKind::kBestResponse);

  const std::vector<std::vector<double>> observations = {
      {0.0, 0.0, 0.0, 0.0}, {0.9, 0.0, 0.9, 0.9}, {0.2, 0.8, 0.5, 0.1},
      {1.0, 1.0, 1.0, 1.0}, {0.5, 0.5, 0.5, 0.5},
  };
  for (const std::vector<double>& pal : observations) {
    ASSERT_TRUE(attacker->NextCycle(pal).ok());
    const std::vector<double>& allocation = attacker->last_allocation();
    const int expected = BruteForceBestType(economics, pal);
    for (int t = 0; t < 4; ++t) {
      EXPECT_EQ(allocation[static_cast<size_t>(t)], t == expected ? 1.0 : 0.0)
          << "pal[0]=" << pal[0] << " type " << t;
    }
  }
}

TEST(BestResponseAttackerTest, NoProfitableAttackKeepsBaselineBitForBit) {
  const core::GameInstance instance = MakeInstance();
  auto attacker = Make(instance, AttackerKind::kBestResponse);

  // Cycle 1: nothing observed yet, the attacker lies low.
  auto first = attacker->NextCycle({});
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(SameBits(*first, instance.alert_distributions));

  // Full detection: refraining dominates, so the emitted stream is the
  // benign baseline again — bit for bit, which is what lets the defender's
  // policy cache treat the cycle as an exact revisit.
  auto quiet = attacker->NextCycle({1.0, 1.0, 1.0, 1.0});
  ASSERT_TRUE(quiet.ok());
  EXPECT_TRUE(SameBits(*quiet, instance.alert_distributions));
  for (double w : attacker->last_allocation()) EXPECT_EQ(w, 0.0);

  // An unaudited stream, by contrast, gets tilted away from the baseline.
  auto attacked = attacker->NextCycle({0.0, 0.0, 0.0, 0.0});
  ASSERT_TRUE(attacked.ok());
  EXPECT_FALSE(SameBits(*attacked, instance.alert_distributions));
}

TEST(AttackerDeterminismTest, IdenticalSpecsProduceIdenticalStreams) {
  const core::GameInstance instance = MakeInstance();
  const std::vector<std::vector<double>> observations = {
      {}, {0.2, 0.8, 0.5, 0.1}, {0.6, 0.1, 0.3, 0.7}, {0.6, 0.1, 0.3, 0.7}};
  for (AttackerKind kind :
       {AttackerKind::kBestResponse, AttackerKind::kQuantalResponse,
        AttackerKind::kFictitiousPlay}) {
    auto left = Make(instance, kind);
    auto right = Make(instance, kind);
    for (const std::vector<double>& pal : observations) {
      auto a = left->NextCycle(pal);
      auto b = right->NextCycle(pal);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_TRUE(SameBits(*a, *b)) << AttackerKindName(kind);
    }
  }
}

TEST(QuantalResponseAttackerTest, AllocationIsANormalizedSoftmax) {
  const core::GameInstance instance = MakeInstance();
  const AttackerEconomics economics = EconomicsOf(instance);
  const std::vector<double> pal = {0.2, 0.8, 0.5, 0.1};

  // lambda = 0: uniform attack mass regardless of utilities.
  auto uniform = Make(instance, AttackerKind::kQuantalResponse, 0.0);
  ASSERT_TRUE(uniform->NextCycle(pal).ok());
  for (double w : uniform->last_allocation()) EXPECT_NEAR(w, 0.25, 1e-12);

  // Finite lambda: a proper distribution, tilted toward higher utility.
  auto soft = Make(instance, AttackerKind::kQuantalResponse, 4.0);
  ASSERT_TRUE(soft->NextCycle(pal).ok());
  double total = 0.0;
  for (double w : soft->last_allocation()) {
    EXPECT_GT(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);

  // lambda -> infinity recovers the best response.
  auto sharp = Make(instance, AttackerKind::kQuantalResponse, 1e4);
  ASSERT_TRUE(sharp->NextCycle(pal).ok());
  const int target = BruteForceBestType(economics, pal);
  ASSERT_GE(target, 0);
  EXPECT_GT(sharp->last_allocation()[static_cast<size_t>(target)], 0.99);
}

TEST(FictitiousPlayAttackerTest, BestRespondsToTheEmpiricalMean) {
  const core::GameInstance instance = MakeInstance();
  const AttackerEconomics economics = EconomicsOf(instance);
  auto attacker = Make(instance, AttackerKind::kFictitiousPlay);

  // Two observations that individually favor different types; fictitious
  // play must answer the second with the best response to their mean, not
  // to the latest observation alone.
  const std::vector<double> pal1 = {0.9, 0.0, 0.9, 0.9};
  const std::vector<double> pal2 = {0.0, 0.9, 0.9, 0.9};
  std::vector<double> mean(4);
  for (int t = 0; t < 4; ++t) {
    mean[static_cast<size_t>(t)] =
        (pal1[static_cast<size_t>(t)] + pal2[static_cast<size_t>(t)]) / 2.0;
  }
  ASSERT_TRUE(attacker->NextCycle(pal1).ok());
  const int first_target = BruteForceBestType(economics, pal1);
  ASSERT_GE(first_target, 0);
  EXPECT_EQ(attacker->last_allocation()[static_cast<size_t>(first_target)],
            1.0);

  // The second answer must be the best response to the *mean* of the two
  // observations, not to pal2 alone. On this instance the mean detection
  // makes every attack unprofitable (the allocation is all zeros), while a
  // latest-observation responder would pile onto the type pal2 leaves
  // unaudited — so the expectations genuinely discriminate.
  ASSERT_TRUE(attacker->NextCycle(pal2).ok());
  const int mean_target = BruteForceBestType(economics, mean);
  EXPECT_NE(mean_target, BruteForceBestType(economics, pal2));
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(attacker->last_allocation()[static_cast<size_t>(t)],
              t == mean_target ? 1.0 : 0.0)
        << "type " << t;
  }
}

// The exploitability oracle (ISSUE satellite): solve the game exactly,
// re-solve it from scratch, and check the best-responding attacker gains
// nothing (<= 1e-9) against the first solve that it could not gain against
// the second. With the deterministic solver stack the two detection vectors
// are bit-identical, so this pins both solver determinism and the
// exploitability definition at once.
TEST(ExploitabilityOracleTest, OptimalPolicyHasZeroExploitabilityGap) {
  const core::GameInstance instance = MakeInstance();
  const AttackerEconomics economics = EconomicsOf(instance);
  const double budget = 6.0;

  solver::EngineRequest request;
  request.solver = "ishm-cggs";
  request.instance = &instance;
  request.budget = budget;
  request.options.ishm.step_size = 0.25;

  auto MixedPal = [&](const solver::SolveResult& result) {
    auto model = core::DetectionModel::Create(instance, budget, {});
    EXPECT_TRUE(model.ok());
    auto pal = core::MixedDetectionProbabilities(*model, result.policy);
    EXPECT_TRUE(pal.ok());
    return std::move(*pal);
  };

  auto first = solver::SolverEngine::SolveOne(request);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = solver::SolverEngine::SolveOne(request);
  ASSERT_TRUE(second.ok()) << second.status();

  const std::vector<double> pal_first = MixedPal(*first);
  const std::vector<double> pal_second = MixedPal(*second);
  const double gap = BestAttackUtility(economics, pal_first) -
                     BestAttackUtility(economics, pal_second);
  EXPECT_LE(std::abs(gap), 1e-9);
}

TEST(AttackerFactoryTest, ValidatesSpecAndParsesNames) {
  const core::GameInstance instance = MakeInstance();
  AttackerSpec spec;
  spec.attack_rate = -1.0;
  EXPECT_FALSE(
      MakeAttacker(spec, instance.alert_distributions, EconomicsOf(instance))
          .ok());
  EXPECT_FALSE(MakeAttacker({}, {}, EconomicsOf(instance)).ok());

  for (const char* name : {"best-response", "quantal", "fictitious"}) {
    auto kind = AttackerKindFromName(name);
    ASSERT_TRUE(kind.ok());
    EXPECT_STREQ(AttackerKindName(*kind), name);
  }
  EXPECT_FALSE(AttackerKindFromName("nash").ok());
}

}  // namespace
}  // namespace auditgame::adversary
