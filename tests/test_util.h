#ifndef AUDIT_GAME_TESTS_TEST_UTIL_H_
#define AUDIT_GAME_TESTS_TEST_UTIL_H_

// Shared fixtures for core/ tests: small hand-analyzable game instances.

#include <vector>

#include "core/game.h"
#include "prob/count_distribution.h"

namespace auditgame::testutil {

/// A 2-type game with constant alert counts (Z = [2, 2]), unit audit costs,
/// and one adversary who can attack a type-0 victim (benefit 4), a type-1
/// victim (benefit 6), or not at all. Penalty 2, attack cost 1.
/// With constant counts the detection probabilities are exact and easy to
/// compute by hand: capacity c on a bin of 2 gives Pal = min(c, 2) / 2.
inline core::GameInstance MakeTinyGame(bool can_opt_out = true) {
  core::GameInstance instance;
  instance.type_names = {"t0", "t1"};
  instance.audit_costs = {1.0, 1.0};
  instance.alert_distributions = {prob::CountDistribution::Constant(2),
                                  prob::CountDistribution::Constant(2)};
  core::Adversary adversary;
  adversary.attack_probability = 1.0;
  adversary.can_opt_out = can_opt_out;
  core::VictimProfile v0;
  v0.type_probs = {1.0, 0.0};
  v0.benefit = 4.0;
  v0.penalty = 2.0;
  v0.attack_cost = 1.0;
  core::VictimProfile v1;
  v1.type_probs = {0.0, 1.0};
  v1.benefit = 6.0;
  v1.penalty = 2.0;
  v1.attack_cost = 1.0;
  adversary.victims = {v0, v1};
  instance.adversaries.push_back(adversary);
  return instance;
}

/// A 3-type instance with Gaussian-ish counts and several adversaries,
/// including duplicates that the compiler should merge.
inline core::GameInstance MakeMediumGame() {
  core::GameInstance instance;
  instance.type_names = {"a", "b", "c"};
  instance.audit_costs = {1.0, 1.0, 1.0};
  for (double mean : {4.0, 3.0, 5.0}) {
    instance.alert_distributions.push_back(
        *prob::CountDistribution::DiscretizedGaussian(mean, 1.0, 1,
                                                      static_cast<int>(mean) + 3));
  }
  auto make_victim = [](int type, double benefit) {
    core::VictimProfile v;
    v.type_probs = {0.0, 0.0, 0.0};
    v.type_probs[static_cast<size_t>(type)] = 1.0;
    v.benefit = benefit;
    v.penalty = 3.0;
    v.attack_cost = 0.5;
    return v;
  };
  for (int e = 0; e < 4; ++e) {
    core::Adversary adversary;
    adversary.attack_probability = 1.0;
    adversary.can_opt_out = true;
    // Adversaries 0 and 1 are identical; 2 and 3 differ.
    if (e < 2) {
      adversary.victims = {make_victim(0, 5.0), make_victim(1, 4.0)};
    } else if (e == 2) {
      adversary.victims = {make_victim(1, 4.0), make_victim(2, 6.0)};
    } else {
      adversary.victims = {make_victim(2, 6.0)};
    }
    instance.adversaries.push_back(adversary);
  }
  return instance;
}

}  // namespace auditgame::testutil

#endif  // AUDIT_GAME_TESTS_TEST_UTIL_H_
