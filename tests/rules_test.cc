#include "audit/rules.h"

#include <gtest/gtest.h>

#include "audit/event.h"
#include "util/random.h"

namespace auditgame::audit {
namespace {

AccessEvent EventWith(std::map<std::string, std::string> strings,
                      std::map<std::string, double> numerics = {}) {
  AccessEvent event;
  event.string_attrs = std::move(strings);
  event.numeric_attrs = std::move(numerics);
  return event;
}

TEST(PredicateTest, StringAttrEquals) {
  const Predicate p = StringAttrEquals("color", "red");
  EXPECT_TRUE(p(EventWith({{"color", "red"}})));
  EXPECT_FALSE(p(EventWith({{"color", "blue"}})));
  EXPECT_FALSE(p(EventWith({})));
}

TEST(PredicateTest, StringAttrsMatchRequiresNonEmpty) {
  const Predicate p = StringAttrsMatch("a", "b");
  EXPECT_TRUE(p(EventWith({{"a", "x"}, {"b", "x"}})));
  EXPECT_FALSE(p(EventWith({{"a", "x"}, {"b", "y"}})));
  // Both missing -> both empty -> must NOT match.
  EXPECT_FALSE(p(EventWith({})));
}

TEST(PredicateTest, NumericComparisons) {
  EXPECT_TRUE(NumericAttrLess("v", 5.0)(EventWith({}, {{"v", 4.0}})));
  EXPECT_FALSE(NumericAttrLess("v", 5.0)(EventWith({}, {{"v", 6.0}})));
  EXPECT_FALSE(NumericAttrLess("v", 5.0)(EventWith({})));  // absent
  EXPECT_TRUE(NumericAttrGreater("v", 5.0)(EventWith({}, {{"v", 6.0}})));
  EXPECT_FALSE(NumericAttrGreater("v", 5.0)(EventWith({})));
}

TEST(PredicateTest, EuclideanWithin) {
  const Predicate p = EuclideanWithin("x1", "y1", "x2", "y2", 0.5);
  EXPECT_TRUE(p(EventWith({}, {{"x1", 0}, {"y1", 0}, {"x2", 0.3}, {"y2", 0.4}})));
  EXPECT_FALSE(p(EventWith({}, {{"x1", 0}, {"y1", 0}, {"x2", 0.4}, {"y2", 0.4}})));
  EXPECT_FALSE(p(EventWith({}, {{"x1", 0}, {"y1", 0}})));  // missing coords
}

TEST(PredicateTest, Combinators) {
  const Predicate yes = Always();
  const Predicate no = Not(Always());
  EXPECT_TRUE(And(yes, yes)(EventWith({})));
  EXPECT_FALSE(And(yes, no)(EventWith({})));
  EXPECT_TRUE(Or(no, yes)(EventWith({})));
  EXPECT_FALSE(Or(no, no)(EventWith({})));
}

TEST(RuleEngineTest, FirstMatchWins) {
  RuleEngine engine;
  ASSERT_TRUE(engine.AddRule({"specific", 2, 1.0,
                              StringAttrEquals("kind", "both")}).ok());
  ASSERT_TRUE(engine.AddRule({"general", 1, 1.0, Always()}).ok());

  const auto match = engine.Match(EventWith({{"kind", "both"}}));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->first, 2);

  const auto fallback = engine.Match(EventWith({{"kind", "other"}}));
  ASSERT_TRUE(fallback.has_value());
  EXPECT_EQ(fallback->first, 1);
}

TEST(RuleEngineTest, NoMatchIsBenign) {
  RuleEngine engine;
  ASSERT_TRUE(engine.AddRule({"r", 0, 1.0, StringAttrEquals("k", "v")}).ok());
  EXPECT_FALSE(engine.Match(EventWith({})).has_value());
}

TEST(RuleEngineTest, RejectsInvalidRules) {
  RuleEngine engine;
  EXPECT_FALSE(engine.AddRule({"bad_type", -1, 1.0, Always()}).ok());
  EXPECT_FALSE(engine.AddRule({"bad_prob", 0, 1.5, Always()}).ok());
  EXPECT_FALSE(engine.AddRule({"no_predicate", 0, 1.0, nullptr}).ok());
  EXPECT_EQ(engine.num_rules(), 0);
}

TEST(RuleEngineTest, MaxAlertType) {
  RuleEngine engine;
  EXPECT_EQ(engine.max_alert_type(), -1);
  ASSERT_TRUE(engine.AddRule({"a", 3, 1.0, Always()}).ok());
  ASSERT_TRUE(engine.AddRule({"b", 1, 1.0, Always()}).ok());
  EXPECT_EQ(engine.max_alert_type(), 3);
}

TEST(RuleEngineTest, StochasticTriggerRespectsProbability) {
  RuleEngine engine;
  ASSERT_TRUE(engine.AddRule({"half", 0, 0.5, Always()}).ok());
  util::Rng rng(123);
  int triggered = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (engine.Trigger(EventWith({}), rng).has_value()) ++triggered;
  }
  EXPECT_NEAR(triggered / static_cast<double>(n), 0.5, 0.02);
}

TEST(RuleEngineTest, DeterministicTriggerAlwaysFires) {
  RuleEngine engine;
  ASSERT_TRUE(engine.AddRule({"always", 4, 1.0, Always()}).ok());
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto type = engine.Trigger(EventWith({}), rng);
    ASSERT_TRUE(type.has_value());
    EXPECT_EQ(*type, 4);
  }
}

}  // namespace
}  // namespace auditgame::audit
