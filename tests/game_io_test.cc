#include "core/game_io.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "data/syn_a.h"
#include "tests/test_util.h"

namespace auditgame::core {
namespace {

using testutil::MakeTinyGame;

TEST(GameIoTest, RoundTripPreservesStructure) {
  const GameInstance original = MakeTinyGame();
  const auto reparsed = ParseGame(SerializeGame(original));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->num_types(), original.num_types());
  EXPECT_EQ(reparsed->type_names, original.type_names);
  EXPECT_EQ(reparsed->audit_costs, original.audit_costs);
  ASSERT_EQ(reparsed->adversaries.size(), original.adversaries.size());
  for (size_t e = 0; e < original.adversaries.size(); ++e) {
    const Adversary& a = original.adversaries[e];
    const Adversary& b = reparsed->adversaries[e];
    EXPECT_EQ(a.can_opt_out, b.can_opt_out);
    EXPECT_DOUBLE_EQ(a.attack_probability, b.attack_probability);
    ASSERT_EQ(a.victims.size(), b.victims.size());
    for (size_t v = 0; v < a.victims.size(); ++v) {
      EXPECT_EQ(a.victims[v].type_probs, b.victims[v].type_probs);
      EXPECT_DOUBLE_EQ(a.victims[v].benefit, b.victims[v].benefit);
    }
  }
  // Distributions survive as pmfs.
  for (int t = 0; t < original.num_types(); ++t) {
    EXPECT_EQ(reparsed->alert_distributions[t].min_value(),
              original.alert_distributions[t].min_value());
    EXPECT_EQ(reparsed->alert_distributions[t].max_value(),
              original.alert_distributions[t].max_value());
    EXPECT_NEAR(reparsed->alert_distributions[t].Mean(),
                original.alert_distributions[t].Mean(), 1e-9);
  }
}

TEST(GameIoTest, RoundTripPreservesSolverResult) {
  // The acid test: solving the reloaded Syn A gives the same optimum.
  const auto original = data::MakeSynA();
  ASSERT_TRUE(original.ok());
  const auto reparsed = ParseGame(SerializeGame(*original));
  ASSERT_TRUE(reparsed.ok());
  const auto a = SolveBruteForce(*original, 6.0);
  const auto b = SolveBruteForce(*reparsed, 6.0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a->objective, b->objective, 1e-9);
  EXPECT_EQ(a->thresholds, b->thresholds);
}

TEST(GameIoTest, ParsesGaussianAndOtherKinds) {
  const std::string text = R"({
    "types": [
      {"name": "g", "audit_cost": 1,
       "counts": {"kind": "gaussian", "mean": 6, "stddev": 2,
                  "min": 1, "max": 11}},
      {"name": "p", "audit_cost": 2,
       "counts": {"kind": "poisson", "lambda": 3}},
      {"name": "c", "audit_cost": 1,
       "counts": {"kind": "constant", "value": 4}}
    ],
    "adversaries": [
      {"attack_probability": 1, "can_opt_out": true,
       "victims": [{"type_probs": [1, 0, 0], "benefit": 5,
                    "penalty": 2, "attack_cost": 1}]}
    ]
  })";
  const auto game = ParseGame(text);
  ASSERT_TRUE(game.ok()) << game.status();
  EXPECT_EQ(game->num_types(), 3);
  EXPECT_EQ(game->alert_distributions[0].min_value(), 1);
  EXPECT_EQ(game->alert_distributions[0].max_value(), 11);
  EXPECT_NEAR(game->alert_distributions[1].Mean(), 3.0, 0.05);
  EXPECT_EQ(game->alert_distributions[2].min_value(), 4);
  EXPECT_EQ(game->alert_distributions[2].max_value(), 4);
}

TEST(GameIoTest, RejectsMalformedGames) {
  EXPECT_FALSE(ParseGame("not json").ok());
  EXPECT_FALSE(ParseGame("{}").ok());
  EXPECT_FALSE(ParseGame(R"({"types": [], "adversaries": []})").ok());
  // Victim with wrong type_probs arity fails instance validation.
  EXPECT_FALSE(ParseGame(R"({
    "types": [{"name": "t", "audit_cost": 1,
               "counts": {"kind": "constant", "value": 2}}],
    "adversaries": [{"attack_probability": 1,
                     "victims": [{"type_probs": [1, 0], "benefit": 1,
                                  "penalty": 1, "attack_cost": 1}]}]
  })").ok());
  // Unknown distribution kind.
  EXPECT_FALSE(ParseGame(R"({
    "types": [{"name": "t", "audit_cost": 1,
               "counts": {"kind": "weird"}}],
    "adversaries": []
  })").ok());
}

TEST(PolicyIoTest, RoundTrip) {
  AuditPolicy policy;
  policy.budget = 10.0;
  policy.thresholds = {3.0, 3.0};
  policy.orderings = {{0, 1}, {1, 0}};
  policy.probabilities = {0.25, 0.75};
  const auto reparsed = ParsePolicy(SerializePolicy(policy));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_DOUBLE_EQ(reparsed->budget, 10.0);
  EXPECT_EQ(reparsed->orderings, policy.orderings);
  EXPECT_EQ(reparsed->thresholds, policy.thresholds);
  EXPECT_DOUBLE_EQ(reparsed->probabilities[1], 0.75);
}

TEST(PolicyIoTest, RejectsInvalidPolicies) {
  EXPECT_FALSE(ParsePolicy("{}").ok());
  // Probabilities not summing to 1 fail Validate.
  EXPECT_FALSE(ParsePolicy(R"({
    "budget": 5, "thresholds": [1, 1],
    "orderings": [[0, 1]], "probabilities": [0.5]
  })").ok());
  // Ordering not a permutation.
  EXPECT_FALSE(ParsePolicy(R"({
    "budget": 5, "thresholds": [1, 1],
    "orderings": [[0, 0]], "probabilities": [1.0]
  })").ok());
}

}  // namespace
}  // namespace auditgame::core
