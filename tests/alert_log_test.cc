#include "audit/log.h"

#include <gtest/gtest.h>

namespace auditgame::audit {
namespace {

TEST(AlertLogTest, RecordsPerPeriodCounts) {
  AlertLog log(2);
  log.StartPeriod();
  ASSERT_TRUE(log.Record(0, 3).ok());
  ASSERT_TRUE(log.Record(1).ok());
  log.StartPeriod();
  ASSERT_TRUE(log.Record(0, 5).ok());

  const auto type0 = log.PeriodCounts(0);
  ASSERT_TRUE(type0.ok());
  EXPECT_EQ(*type0, (std::vector<int>{3, 5}));
  const auto type1 = log.PeriodCounts(1);
  ASSERT_TRUE(type1.ok());
  EXPECT_EQ(*type1, (std::vector<int>{1, 0}));
}

TEST(AlertLogTest, RecordBeforePeriodFails) {
  AlertLog log(1);
  EXPECT_FALSE(log.Record(0).ok());
}

TEST(AlertLogTest, RejectsInvalidType) {
  AlertLog log(1);
  log.StartPeriod();
  EXPECT_FALSE(log.Record(3).ok());
  EXPECT_FALSE(log.Record(-1).ok());
  EXPECT_FALSE(log.PeriodCounts(9).ok());
}

TEST(AlertLogTest, RejectsNegativeCount) {
  AlertLog log(1);
  log.StartPeriod();
  EXPECT_FALSE(log.Record(0, -2).ok());
}

TEST(AlertLogTest, LearnsEmpiricalDistribution) {
  AlertLog log(1);
  for (int count : {2, 2, 3, 5}) {
    log.StartPeriod();
    ASSERT_TRUE(log.Record(0, count).ok());
  }
  const auto dist = log.LearnDistribution(0);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->min_value(), 2);
  EXPECT_EQ(dist->max_value(), 5);
  EXPECT_NEAR(dist->Pmf(2), 0.5, 1e-12);
  EXPECT_NEAR(dist->Mean(), 3.0, 1e-12);
}

TEST(AlertLogTest, LearnWithoutPeriodsFails) {
  AlertLog log(1);
  EXPECT_FALSE(log.LearnDistribution(0).ok());
}

TEST(AlertLogTest, GaussianFitMatchesMoments) {
  AlertLog log(1);
  // Counts with mean 10, some spread.
  for (int count : {6, 8, 9, 10, 10, 11, 12, 14}) {
    log.StartPeriod();
    ASSERT_TRUE(log.Record(0, count).ok());
  }
  const auto dist = log.LearnGaussianFit(0);
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR(dist->Mean(), 10.0, 0.5);
}

TEST(AlertLogTest, GaussianFitNeedsVariance) {
  AlertLog log(1);
  log.StartPeriod();
  ASSERT_TRUE(log.Record(0, 4).ok());
  EXPECT_FALSE(log.LearnGaussianFit(0).ok());  // one period
  log.StartPeriod();
  ASSERT_TRUE(log.Record(0, 4).ok());
  EXPECT_FALSE(log.LearnGaussianFit(0).ok());  // zero variance
}

}  // namespace
}  // namespace auditgame::audit
