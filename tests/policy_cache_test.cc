#include "service/policy_cache.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/game_io.h"
#include "tests/test_util.h"
#include "util/lru_cache.h"

namespace auditgame::service {
namespace {

using testutil::MakeTinyGame;
using testutil::MakeMediumGame;

solver::EngineRequest MakeRequest(const core::GameInstance& instance) {
  solver::EngineRequest request;
  request.solver = "ishm-cggs";
  request.instance = &instance;
  request.budget = 4.0;
  request.options.ishm.step_size = 0.25;
  return request;
}

solver::SolveResult MakeResult(double objective) {
  solver::SolveResult result;
  result.solver = "ishm-cggs";
  result.objective = objective;
  result.thresholds = {1.0, 2.0};
  return result;
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  util::LruCache<int, int> cache(2);
  cache.Insert(1, 10);
  cache.Insert(2, 20);
  ASSERT_NE(cache.Lookup(1), nullptr);  // 1 is now warmer than 2
  cache.Insert(3, 30);                  // evicts 2
  EXPECT_EQ(cache.Lookup(2), nullptr);
  EXPECT_NE(cache.Lookup(1), nullptr);
  EXPECT_NE(cache.Lookup(3), nullptr);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, InsertOverwritesAndRefreshes) {
  util::LruCache<int, int> cache(2);
  cache.Insert(1, 10);
  cache.Insert(2, 20);
  cache.Insert(1, 11);  // overwrite refreshes 1; 2 is coldest
  cache.Insert(3, 30);
  EXPECT_EQ(cache.Lookup(2), nullptr);
  ASSERT_NE(cache.Lookup(1), nullptr);
  EXPECT_EQ(*cache.Lookup(1), 11);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, PeekDoesNotRefresh) {
  util::LruCache<int, int> cache(2);
  cache.Insert(1, 10);
  cache.Insert(2, 20);
  ASSERT_NE(cache.Peek(1), nullptr);  // no recency bump
  cache.Insert(3, 30);                // 1 is still the coldest -> evicted
  EXPECT_EQ(cache.Lookup(1), nullptr);
  EXPECT_NE(cache.Lookup(2), nullptr);
}

TEST(FingerprintTest, GameFingerprintIsContentAddressed) {
  const core::GameInstance a = MakeTinyGame();
  const core::GameInstance b = MakeTinyGame();  // different object, same bits
  EXPECT_EQ(core::FingerprintGame(a), core::FingerprintGame(b));
  EXPECT_NE(core::FingerprintGame(a), core::FingerprintGame(MakeMediumGame()));

  core::GameInstance tweaked = MakeTinyGame();
  tweaked.adversaries[0].victims[0].benefit += 1e-9;
  EXPECT_NE(core::FingerprintGame(a), core::FingerprintGame(tweaked));
  EXPECT_EQ(core::FingerprintGame(a).ToHex().size(), 32u);
}

TEST(FingerprintTest, RequestFingerprintCoversConfiguration) {
  const core::GameInstance tiny = MakeTinyGame();
  const solver::EngineRequest base = MakeRequest(tiny);
  const util::Fingerprint key = FingerprintRequest(base);
  EXPECT_EQ(key, FingerprintRequest(base));  // deterministic

  solver::EngineRequest other = base;
  other.budget = 5.0;
  EXPECT_NE(key, FingerprintRequest(other));

  other = base;
  other.solver = "ishm-full";
  EXPECT_NE(key, FingerprintRequest(other));

  other = base;
  other.options.ishm.step_size = 0.1;
  EXPECT_NE(key, FingerprintRequest(other));

  other = base;
  other.detection_options.semantics =
      core::DetectionModel::Semantics::kInclusiveAttack;
  EXPECT_NE(key, FingerprintRequest(other));

  other = base;
  other.thresholds = {1.0, 1.0};
  EXPECT_NE(key, FingerprintRequest(other));
}

TEST(FingerprintTest, SearchConfigurationChangesTheKey) {
  // A differently configured search (seed, subset cap, column pool) can
  // reach different heuristic optima, so services with different standing
  // configurations must never collide in a shared cache. (AuditService
  // still caches its warm re-solves under the base key — it fingerprints
  // before applying warm overrides.)
  const core::GameInstance tiny = MakeTinyGame();
  const solver::EngineRequest cold = MakeRequest(tiny);
  const util::Fingerprint key = FingerprintRequest(cold);

  solver::EngineRequest other = cold;
  other.options.ishm.max_subset_size = 1;
  EXPECT_NE(key, FingerprintRequest(other));

  other = cold;
  other.options.ishm.initial_thresholds = {2.0, 1.0};
  EXPECT_NE(key, FingerprintRequest(other));

  other = cold;
  other.options.cggs.initial_orderings = {{0, 1}};
  EXPECT_NE(key, FingerprintRequest(other));

  other = cold;
  other.options.cggs.master_mode = core::CggsOptions::MasterMode::kColdDense;
  EXPECT_NE(key, FingerprintRequest(other));

  // pricing_threads is result-neutral by contract, but it is still part of
  // the configuration image the key must cover.
  other = cold;
  other.options.cggs.pricing_threads = 4;
  EXPECT_NE(key, FingerprintRequest(other));

  other = cold;
  other.warm_start.thresholds = {2.0, 1.0};
  EXPECT_NE(key, FingerprintRequest(other));

  other = cold;
  other.warm_start.orderings = {{1, 0}};
  EXPECT_NE(key, FingerprintRequest(other));
}

TEST(PolicyCacheTest, LookupInsertAndStats) {
  PolicyCache cache(4);
  const core::GameInstance tiny = MakeTinyGame();
  const util::Fingerprint key = FingerprintRequest(MakeRequest(tiny));
  EXPECT_FALSE(cache.Lookup(key).has_value());
  cache.Insert(key, MakeResult(1.5));
  const auto hit = cache.Lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->objective, 1.5);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.capacity(), 4u);
}

TEST(PolicyCacheTest, EvictsBeyondCapacity) {
  PolicyCache cache(2);
  for (int i = 0; i < 4; ++i) {
    util::Fingerprint key{static_cast<uint64_t>(i), 0};
    cache.Insert(key, MakeResult(i));
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 2);
  EXPECT_FALSE(cache.Lookup(util::Fingerprint{0, 0}).has_value());
  EXPECT_TRUE(cache.Lookup(util::Fingerprint{3, 0}).has_value());
}

// Hammer one shared cache from several threads (the engine-worker pattern):
// no crashes, and every lookup that hits returns the value inserted under
// that exact key. Run under the CI ASan/UBSan job, this is the race check
// for the concurrent cache path.
TEST(PolicyCacheTest, ConcurrentLookupInsertIsSafe) {
  PolicyCache cache(16);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&cache, w] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint64_t slot = static_cast<uint64_t>((w + i) % 32);
        const util::Fingerprint key{slot, slot * 7919};
        if (const auto hit = cache.Lookup(key)) {
          EXPECT_EQ(hit->objective, static_cast<double>(slot));
        } else {
          cache.Insert(key, MakeResult(static_cast<double>(slot)));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kOpsPerThread);
}

}  // namespace
}  // namespace auditgame::service
