// Round-trip coverage for every StreamState-bearing layer: a value
// serialized by Serializer::Writer and restored by Serializer::Reader must
// be bit-for-bit identical (content fingerprints equal, doubles unchanged
// at the bit level) — the contract shard snapshots are built on.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/game.h"
#include "core/game_io.h"
#include "core/policy.h"
#include "prob/count_distribution.h"
#include "server/shard.h"
#include "service/audit_service.h"
#include "service/policy_cache.h"
#include "solver/solver.h"
#include "tests/test_util.h"
#include "util/serializer.h"

namespace auditgame {
namespace {

using util::Serializer;

/// Writer → Reader round trip of any StreamState type; fails the test on
/// any stream error and returns the restored value.
template <typename T>
T RoundTrip(T& value) {
  Serializer w = Serializer::Writer();
  value.StreamState(w);
  EXPECT_TRUE(w.ok()) << w.status();
  T restored;
  Serializer r = Serializer::Reader(w.buffer());
  restored.StreamState(r);
  r.ExpectExhausted();
  EXPECT_TRUE(r.ok()) << r.status();
  return restored;
}

service::AuditServiceOptions FastOptions() {
  service::AuditServiceOptions options;
  options.budgets = {2.0, 3.0};
  options.solver_options.ishm.step_size = 0.25;
  options.num_threads = -1;  // inline, deterministic thread-free solves
  return options;
}

TEST(StreamStateTest, CountDistributionRoundTripsBitForBit) {
  auto dist = prob::CountDistribution::DiscretizedGaussian(4.0, 1.5, 0, 9);
  ASSERT_TRUE(dist.ok());
  prob::CountDistribution restored = RoundTrip(*dist);
  ASSERT_EQ(restored.min_value(), dist->min_value());
  ASSERT_EQ(restored.max_value(), dist->max_value());
  for (int z = dist->min_value(); z <= dist->max_value(); ++z) {
    // Bit-for-bit, not approximately: replay determinism depends on it.
    EXPECT_EQ(restored.Pmf(z), dist->Pmf(z));
    EXPECT_EQ(restored.Cdf(z), dist->Cdf(z));
  }
}

TEST(StreamStateTest, GameInstanceRoundTripsAndRevalidates) {
  core::GameInstance game = testutil::MakeMediumGame();
  core::GameInstance restored = RoundTrip(game);
  EXPECT_EQ(core::FingerprintGame(restored), core::FingerprintGame(game));
  EXPECT_EQ(restored.type_names, game.type_names);
  EXPECT_EQ(restored.adversaries.size(), game.adversaries.size());
}

TEST(StreamStateTest, InvalidGameInstanceIsRejectedOnRead) {
  core::GameInstance game = testutil::MakeTinyGame();
  Serializer w = Serializer::Writer();
  game.StreamState(w);
  // Corrupt the tail (the last adversary's doubles) so the instance parses
  // structurally but fails Validate() — restore must refuse, not serve a
  // broken game.
  std::string bytes = w.TakeBuffer();
  for (size_t i = bytes.size() - 8; i < bytes.size(); ++i) bytes[i] = '\xff';
  core::GameInstance restored;
  Serializer r = Serializer::Reader(bytes);
  restored.StreamState(r);
  EXPECT_FALSE(r.ok());
}

TEST(StreamStateTest, AuditPolicyRoundTrip) {
  core::AuditPolicy policy;
  policy.orderings = {{0, 1, 2}, {2, 0, 1}};
  policy.probabilities = {0.25, 0.75};
  policy.thresholds = {1.0, 2.0, 0.5};
  policy.budget = 6.5;
  core::AuditPolicy restored = RoundTrip(policy);
  EXPECT_EQ(restored.orderings, policy.orderings);
  EXPECT_EQ(restored.probabilities, policy.probabilities);
  EXPECT_EQ(restored.thresholds, policy.thresholds);
  EXPECT_EQ(restored.budget, policy.budget);
}

TEST(StreamStateTest, SolveResultRoundTripFromRealSolve) {
  service::AuditService service(testutil::MakeTinyGame(), FastOptions());
  auto report = service.RunCycle();
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_FALSE(report->policies.empty());
  solver::SolveResult& result = report->policies[0].result;

  solver::SolveResult restored = RoundTrip(result);
  EXPECT_EQ(restored.solver, result.solver);
  EXPECT_EQ(restored.objective, result.objective);  // bit-for-bit
  EXPECT_EQ(restored.thresholds, result.thresholds);
  EXPECT_EQ(restored.policy.probabilities, result.policy.probabilities);
  EXPECT_EQ(restored.stats.evaluations, result.stats.evaluations);
  // Wall-clock fields are real fields in read/write mode...
  EXPECT_EQ(restored.stats.seconds, result.stats.seconds);
  // ...but never part of the content fingerprint.
  restored.stats.seconds += 1000.0;
  restored.stats.pricing_seconds += 1000.0;
  EXPECT_EQ(util::FingerprintState(restored), util::FingerprintState(result));
}

TEST(StreamStateTest, PolicyCachePreservesEntriesStatsAndLruOrder) {
  service::AuditService service(testutil::MakeTinyGame(), FastOptions());
  auto report = service.RunCycle();
  ASSERT_TRUE(report.ok()) << report.status();
  solver::SolveResult result = report->policies[0].result;

  auto key = [](uint64_t n) {
    util::Fingerprint fp;
    fp.hi = n;
    fp.lo = ~n;
    return fp;
  };

  service::PolicyCache cache(/*capacity=*/3);
  for (uint64_t i = 0; i < 3; ++i) {
    solver::SolveResult entry = result;
    entry.objective = static_cast<double>(i);
    cache.Insert(key(i), std::move(entry));
  }
  // Touch key 0 so the recency order is 1 < 2 < 0 (oldest first).
  ASSERT_TRUE(cache.Lookup(key(0)).has_value());
  ASSERT_FALSE(cache.Lookup(key(9)).has_value());  // one miss for the stats

  service::PolicyCache restored(/*capacity=*/3);
  {
    Serializer w = Serializer::Writer();
    cache.StreamState(w);
    ASSERT_TRUE(w.ok()) << w.status();
    Serializer r = Serializer::Reader(w.buffer());
    restored.StreamState(r);
    r.ExpectExhausted();
    ASSERT_TRUE(r.ok()) << r.status();
  }

  EXPECT_EQ(restored.size(), cache.size());
  const auto stats = cache.stats();
  const auto rstats = restored.stats();
  EXPECT_EQ(rstats.hits, stats.hits);
  EXPECT_EQ(rstats.misses, stats.misses);
  EXPECT_EQ(rstats.insertions, stats.insertions);
  EXPECT_EQ(rstats.evictions, stats.evictions);
  for (uint64_t i = 0; i < 3; ++i) {
    auto entry = restored.Lookup(key(i));
    ASSERT_TRUE(entry.has_value()) << "key " << i;
    EXPECT_EQ(entry->objective, static_cast<double>(i));
  }

  // The restored recency order must match the original: inserting one new
  // entry into a restored-but-untouched copy must evict key 1 (the oldest),
  // not key 0 (refreshed before the snapshot).
  service::PolicyCache untouched(/*capacity=*/3);
  {
    Serializer w = Serializer::Writer();
    cache.StreamState(w);
    Serializer r = Serializer::Reader(w.buffer());
    untouched.StreamState(r);
    ASSERT_TRUE(r.ok()) << r.status();
  }
  untouched.Insert(key(100), result);
  EXPECT_FALSE(untouched.Lookup(key(1)).has_value()) << "LRU order lost";
  EXPECT_TRUE(untouched.Lookup(key(0)).has_value());
  EXPECT_TRUE(untouched.Lookup(key(2)).has_value());
}

TEST(StreamStateTest, PolicyCacheCapacityMismatchIsRejected) {
  service::PolicyCache cache(/*capacity=*/8);
  Serializer w = Serializer::Writer();
  cache.StreamState(w);
  service::PolicyCache smaller(/*capacity=*/4);
  Serializer r = Serializer::Reader(w.buffer());
  smaller.StreamState(r);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(StreamStateTest, AuditServiceRoundTripServesIdenticalCycles) {
  const core::GameInstance game = testutil::MakeTinyGame();
  service::AuditService original(game, FastOptions());
  ASSERT_TRUE(original.RunCycle().ok());
  auto perturbed = game.alert_distributions;
  perturbed[0] = prob::CountDistribution::Constant(3);
  ASSERT_TRUE(original.UpdateAlertDistributions(perturbed).ok());
  ASSERT_TRUE(original.RunCycle().ok());

  service::AuditService restored(game, FastOptions());
  {
    Serializer w = Serializer::Writer();
    original.StreamState(w);
    ASSERT_TRUE(w.ok()) << w.status();
    Serializer r = Serializer::Reader(w.buffer());
    restored.StreamState(r);
    r.ExpectExhausted();
    ASSERT_TRUE(r.ok()) << r.status();
  }
  EXPECT_EQ(util::FingerprintState(restored), util::FingerprintState(original));
  const auto stats = original.stats();
  const auto rstats = restored.stats();
  EXPECT_EQ(rstats.cycles, stats.cycles);
  EXPECT_EQ(rstats.served_from_cache, stats.served_from_cache);
  EXPECT_EQ(rstats.warm_solves, stats.warm_solves);
  EXPECT_EQ(rstats.cold_solves, stats.cold_solves);

  // The restored service must continue exactly where the original would:
  // same sources (cache hits stay hits), same policies, bit-for-bit.
  auto next_original = original.RunCycle();
  auto next_restored = restored.RunCycle();
  ASSERT_TRUE(next_original.ok());
  ASSERT_TRUE(next_restored.ok());
  ASSERT_EQ(next_restored->policies.size(), next_original->policies.size());
  for (size_t i = 0; i < next_original->policies.size(); ++i) {
    EXPECT_EQ(next_restored->policies[i].source,
              next_original->policies[i].source);
    EXPECT_EQ(next_restored->policies[i].drift,
              next_original->policies[i].drift);
    EXPECT_EQ(
        util::FingerprintState(next_restored->policies[i].result),
        util::FingerprintState(next_original->policies[i].result));
  }
}

TEST(StreamStateTest, ShardStateRoundTripsBetweenSameConfigShards) {
  const core::GameInstance game = testutil::MakeTinyGame();
  auto no_respond = [](std::vector<server::Shard::Response>) {};
  server::Shard a(0, game, FastOptions(), /*queue_capacity=*/4,
                  /*max_batch=*/2, no_respond, nullptr);
  std::string state = a.SerializeState();

  server::Shard b(0, game, FastOptions(), /*queue_capacity=*/4,
                  /*max_batch=*/2, no_respond, nullptr);
  Serializer r = Serializer::Reader(state);
  b.StreamState(r);
  r.ExpectExhausted();
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(b.StateFingerprint(), a.StateFingerprint());
}

TEST(StreamStateTest, ShardConfigMismatchRefusesRestore) {
  const core::GameInstance game = testutil::MakeTinyGame();
  auto no_respond = [](std::vector<server::Shard::Response>) {};
  server::Shard a(0, game, FastOptions(), /*queue_capacity=*/4,
                  /*max_batch=*/2, no_respond, nullptr);
  const std::string state = a.SerializeState();

  service::AuditServiceOptions different = FastOptions();
  different.solver_options.ishm.step_size = 0.5;  // a different search
  server::Shard b(0, game, different, /*queue_capacity=*/4,
                  /*max_batch=*/2, no_respond, nullptr);
  Serializer r = Serializer::Reader(state);
  b.StreamState(r);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kFailedPrecondition);

  // A different base game must refuse just the same.
  server::Shard c(0, testutil::MakeMediumGame(), FastOptions(),
                  /*queue_capacity=*/4, /*max_batch=*/2, no_respond, nullptr);
  Serializer r2 = Serializer::Reader(state);
  c.StreamState(r2);
  EXPECT_FALSE(r2.ok());
}

}  // namespace
}  // namespace auditgame
