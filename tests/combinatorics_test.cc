#include "util/combinatorics.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace auditgame::util {
namespace {

TEST(FactorialTest, SmallValues) {
  EXPECT_EQ(Factorial(0), 1u);
  EXPECT_EQ(Factorial(1), 1u);
  EXPECT_EQ(Factorial(4), 24u);
  EXPECT_EQ(Factorial(7), 5040u);
  EXPECT_EQ(Factorial(20), 2432902008176640000ull);
}

TEST(BinomialTest, KnownValues) {
  EXPECT_EQ(Binomial(4, 2), 6u);
  EXPECT_EQ(Binomial(7, 3), 35u);
  EXPECT_EQ(Binomial(10, 0), 1u);
  EXPECT_EQ(Binomial(10, 10), 1u);
  EXPECT_EQ(Binomial(3, 5), 0u);
  EXPECT_EQ(Binomial(52, 5), 2598960u);
}

TEST(BinomialTest, SymmetryProperty) {
  for (int n = 0; n <= 12; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_EQ(Binomial(n, k), Binomial(n, n - k));
    }
  }
}

TEST(BinomialTest, PascalRule) {
  for (int n = 1; n <= 12; ++n) {
    for (int k = 1; k < n; ++k) {
      EXPECT_EQ(Binomial(n, k), Binomial(n - 1, k - 1) + Binomial(n - 1, k));
    }
  }
}

TEST(PermutationsTest, CountAndUniqueness) {
  const auto perms = AllPermutations(4);
  EXPECT_EQ(perms.size(), 24u);
  std::set<std::vector<int>> unique(perms.begin(), perms.end());
  EXPECT_EQ(unique.size(), 24u);
  for (const auto& p : perms) {
    std::set<int> elements(p.begin(), p.end());
    EXPECT_EQ(elements.size(), 4u);
    EXPECT_EQ(*elements.begin(), 0);
    EXPECT_EQ(*elements.rbegin(), 3);
  }
}

TEST(PermutationsTest, LexicographicOrder) {
  const auto perms = AllPermutations(3);
  ASSERT_EQ(perms.size(), 6u);
  EXPECT_EQ(perms.front(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(perms.back(), (std::vector<int>{2, 1, 0}));
  for (size_t i = 1; i < perms.size(); ++i) EXPECT_LT(perms[i - 1], perms[i]);
}

TEST(PermutationsTest, EarlyStop) {
  int count = 0;
  ForEachPermutation(5, [&count](const std::vector<int>&) {
    return ++count < 10;
  });
  EXPECT_EQ(count, 10);
}

TEST(CombinationsTest, CountMatchesBinomial) {
  for (int n = 1; n <= 7; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_EQ(AllCombinations(n, k).size(), Binomial(n, k));
    }
  }
}

TEST(CombinationsTest, SortedAndUnique) {
  const auto combos = AllCombinations(6, 3);
  std::set<std::vector<int>> unique(combos.begin(), combos.end());
  EXPECT_EQ(unique.size(), combos.size());
  for (const auto& c : combos) {
    for (size_t i = 1; i < c.size(); ++i) EXPECT_LT(c[i - 1], c[i]);
  }
}

TEST(CombinationsTest, DegenerateCases) {
  EXPECT_TRUE(AllCombinations(3, 5).empty());
  EXPECT_EQ(AllCombinations(3, 0).size(), 1u);  // the empty set
  EXPECT_EQ(AllCombinations(3, 3).size(), 1u);
}

TEST(IntegerVectorTest, EnumeratesFullBox) {
  std::vector<std::vector<int>> vectors;
  ForEachIntegerVector({2, 1, 3}, [&vectors](const std::vector<int>& v) {
    vectors.push_back(v);
    return true;
  });
  EXPECT_EQ(vectors.size(), static_cast<size_t>(3 * 2 * 4));
  std::set<std::vector<int>> unique(vectors.begin(), vectors.end());
  EXPECT_EQ(unique.size(), vectors.size());
  EXPECT_EQ(vectors.front(), (std::vector<int>{0, 0, 0}));
  EXPECT_EQ(vectors.back(), (std::vector<int>{2, 1, 3}));
}

TEST(IntegerVectorTest, EarlyStop) {
  int count = 0;
  ForEachIntegerVector({9, 9}, [&count](const std::vector<int>&) {
    return ++count < 5;
  });
  EXPECT_EQ(count, 5);
}

TEST(IntegerVectorTest, SingleDimension) {
  int count = 0;
  ForEachIntegerVector({4}, [&count](const std::vector<int>& v) {
    EXPECT_EQ(v[0], count);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 5);
}

}  // namespace
}  // namespace auditgame::util
