// Wire-level tests of the compact binary encoding (server/binary_codec.h):
// request/response round trips, reassembly through the frame decoder one
// byte at a time, and rejection of truncated, corrupted, and oversized
// payloads — the decode failures that must cost a binary connection its
// life (the server's sticky-disconnect discipline relies on the decoder
// never misreading a damaged payload as a valid request).
#include "server/binary_codec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/frame.h"
#include "prob/count_distribution.h"
#include "server/protocol.h"
#include "service/audit_service.h"

namespace auditgame {
namespace {

std::vector<prob::CountDistribution> TestDistributions() {
  std::vector<prob::CountDistribution> dists;
  auto a = prob::CountDistribution::FromPmf(2, {0.25, 0.5, 0.25});
  auto b = prob::CountDistribution::FromPmf(0, {0.125, 0.125, 0.25, 0.5});
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  dists.push_back(*a);
  dists.push_back(*b);
  return dists;
}

TEST(BinaryCodecTest, IngestRequestRoundTrip) {
  const auto dists = TestDistributions();
  const std::string payload =
      server::EncodeBinaryIngestRequest(4242, "tenant-x", dists);
  ASSERT_TRUE(server::IsBinaryFrame(payload));

  auto request = server::DecodeBinaryRequest(payload);
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->verb, server::Verb::kIngest);
  EXPECT_EQ(request->tenant, "tenant-x");
  EXPECT_EQ(request->id, 4242);
  EXPECT_TRUE(request->binary);
  ASSERT_EQ(request->distributions.size(), dists.size());
  for (size_t i = 0; i < dists.size(); ++i) {
    EXPECT_EQ(request->distributions[i].min_value(), dists[i].min_value());
    ASSERT_EQ(request->distributions[i].support_size(),
              dists[i].support_size());
    for (int z = dists[i].min_value(); z <= dists[i].max_value(); ++z) {
      EXPECT_DOUBLE_EQ(request->distributions[i].Pmf(z), dists[i].Pmf(z));
    }
  }
  EXPECT_EQ(server::BinaryCorrelationIdOf(payload), 4242);
}

TEST(BinaryCodecTest, SolveCycleRequestRoundTrip) {
  const std::string payload =
      server::EncodeBinarySolveCycleRequest(7, "acme");
  auto request = server::DecodeBinaryRequest(payload);
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->verb, server::Verb::kSolveCycle);
  EXPECT_EQ(request->tenant, "acme");
  EXPECT_EQ(request->id, 7);
  EXPECT_TRUE(request->binary);
  EXPECT_TRUE(request->distributions.empty());
}

TEST(BinaryCodecTest, JsonPayloadIsNotBinary) {
  EXPECT_FALSE(server::IsBinaryFrame(R"({"verb":"stats","id":1})"));
  EXPECT_FALSE(server::IsBinaryFrame(""));
}

// A pipelined client hands the TCP stream to the frame decoder in
// arbitrary chunks; the binary payload must survive the worst case —
// reassembly one byte at a time — bit-exactly.
TEST(BinaryCodecTest, ByteAtATimeReassemblyThroughFrameDecoder) {
  const auto dists = TestDistributions();
  const std::string payload =
      server::EncodeBinaryIngestRequest(31337, "drip-fed", dists);
  const std::string frame = net::EncodeFrame(payload);

  net::FrameDecoder decoder(net::kDefaultMaxFramePayload);
  std::string decoded;
  for (size_t i = 0; i < frame.size(); ++i) {
    decoder.Append(frame.data() + i, 1);
    auto next = decoder.Next(&decoded);
    ASSERT_TRUE(next.ok()) << next.status();
    EXPECT_EQ(*next, i + 1 == frame.size()) << "byte " << i;
  }
  EXPECT_EQ(decoded, payload);
  auto request = server::DecodeBinaryRequest(decoded);
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->tenant, "drip-fed");
  EXPECT_EQ(request->id, 31337);
}

// Every truncation point of a valid request must decode to an error —
// never to a shorter valid request.
TEST(BinaryCodecTest, EveryTruncationIsRejected) {
  const std::string payload =
      server::EncodeBinaryIngestRequest(9, "t", TestDistributions());
  for (size_t len = 0; len < payload.size(); ++len) {
    auto request = server::DecodeBinaryRequest(payload.substr(0, len));
    EXPECT_FALSE(request.ok()) << "accepted a " << len << "-byte prefix of a "
                               << payload.size() << "-byte request";
  }
}

TEST(BinaryCodecTest, CorruptedHeaderFieldsAreRejected) {
  const std::string good =
      server::EncodeBinarySolveCycleRequest(5, "tenant");
  {
    std::string bad = good;
    bad[1] = 99;  // unknown version
    EXPECT_FALSE(server::DecodeBinaryRequest(bad).ok());
  }
  {
    std::string bad = good;
    bad[2] = static_cast<char>(server::kBinaryKindResponse);  // not a request
    EXPECT_FALSE(server::DecodeBinaryRequest(bad).ok());
  }
  {
    std::string bad = good;
    bad[3] = 77;  // unknown verb
    EXPECT_FALSE(server::DecodeBinaryRequest(bad).ok());
  }
  {
    // Trailing garbage after a complete request body: the payload length
    // and the body must agree exactly.
    std::string bad = good + "x";
    EXPECT_FALSE(server::DecodeBinaryRequest(bad).ok());
  }
}

// Length fields that promise more bytes than the payload holds must be
// caught by the bounds-checked reader, not walk off the buffer.
TEST(BinaryCodecTest, OversizedLengthClaimsAreRejected)  {
  std::string payload = server::EncodeBinarySolveCycleRequest(5, "ab");
  // The u16 tenant_len sits after magic/version/kind/verb + u64 id.
  const size_t tenant_len_offset = 4 + 8;
  payload[tenant_len_offset] = static_cast<char>(0xFF);
  payload[tenant_len_offset + 1] = static_cast<char>(0xFF);
  EXPECT_FALSE(server::DecodeBinaryRequest(payload).ok());
}

TEST(BinaryCodecTest, CorrelationIdOfDamagedPayloads) {
  const std::string good = server::EncodeBinarySolveCycleRequest(123, "t");
  // A damaged-but-header-complete payload still yields its id, so the
  // final error frame echoes something the client can match...
  std::string truncated = good.substr(0, 12);
  EXPECT_EQ(server::BinaryCorrelationIdOf(truncated), 123);
  // ...and a payload cut inside the fixed header yields -1.
  EXPECT_EQ(server::BinaryCorrelationIdOf(good.substr(0, 5)), -1);
}

TEST(BinaryCodecTest, IngestOkResponseRoundTrip) {
  const std::string payload = server::EncodeBinaryIngestOkResponse(88, 3);
  ASSERT_TRUE(server::IsBinaryFrame(payload));
  auto response = server::DecodeBinaryResponse(payload);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->verb, server::kBinaryVerbIngest);
  EXPECT_EQ(response->correlation_id, 88);
  EXPECT_EQ(response->status, server::kBinaryStatusOk);
  EXPECT_EQ(response->shard, 3);
}

TEST(BinaryCodecTest, SolveCycleResponseRoundTrip) {
  service::AuditService::CycleReport report;
  report.cycle = 17;
  report.seconds = 0.125;
  service::AuditService::CyclePolicy policy;
  policy.budget = 6.0;
  policy.source = service::AuditService::Source::kWarmSolve;
  policy.drift = 0.0625;
  policy.result.objective = -2.5;
  policy.result.thresholds = {1.0, 2.0, 3.0};
  report.policies.push_back(policy);

  const std::string payload =
      server::EncodeBinarySolveCycleResponse(999, 1, report);
  auto response = server::DecodeBinaryResponse(payload);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->verb, server::kBinaryVerbSolveCycle);
  EXPECT_EQ(response->correlation_id, 999);
  EXPECT_EQ(response->status, server::kBinaryStatusOk);
  EXPECT_EQ(response->shard, 1);
  EXPECT_EQ(response->cycle, 17);
  EXPECT_DOUBLE_EQ(response->seconds, 0.125);
  ASSERT_EQ(response->policies.size(), 1u);
  EXPECT_DOUBLE_EQ(response->policies[0].budget, 6.0);
  EXPECT_EQ(response->policies[0].source,
            service::AuditService::Source::kWarmSolve);
  EXPECT_DOUBLE_EQ(response->policies[0].drift, 0.0625);
  EXPECT_DOUBLE_EQ(response->policies[0].objective, -2.5);
  EXPECT_EQ(response->policies[0].thresholds,
            (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(BinaryCodecTest, OverloadedAndErrorResponseRoundTrips) {
  {
    const std::string payload = server::EncodeBinaryOverloadedResponse(
        55, 2, server::kBinaryVerbSolveCycle);
    auto response = server::DecodeBinaryResponse(payload);
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->correlation_id, 55);
    EXPECT_EQ(response->status, server::kBinaryStatusOverloaded);
    EXPECT_EQ(response->verb, server::kBinaryVerbSolveCycle);
    EXPECT_EQ(response->shard, 2);
  }
  {
    const std::string payload =
        server::EncodeBinaryErrorResponse(-1, "unknown tenant");
    auto response = server::DecodeBinaryResponse(payload);
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->correlation_id, -1);
    EXPECT_EQ(response->status, server::kBinaryStatusError);
    EXPECT_EQ(response->message, "unknown tenant");
  }
}

TEST(BinaryCodecTest, ResponseTruncationsAreRejected) {
  const std::string payload = server::EncodeBinaryErrorResponse(3, "boom");
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(server::DecodeBinaryResponse(payload.substr(0, len)).ok())
        << "accepted a " << len << "-byte prefix";
  }
  // Requests do not decode as responses.
  EXPECT_FALSE(
      server::DecodeBinaryResponse(
          server::EncodeBinarySolveCycleRequest(1, "t"))
          .ok());
}

}  // namespace
}  // namespace auditgame
