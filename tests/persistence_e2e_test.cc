// End-to-end durability: a shard that snapshots and WAL-logs its ingest
// stream, is torn down mid-workload, and is recovered by a fresh shard
// must (a) reach the exact state fingerprint of an uninterrupted run and
// (b) answer the remaining workload with identical responses (modulo
// wall-clock timing fields).
#include <sys/stat.h>
#include <unistd.h>

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/durability.h"
#include "server/protocol.h"
#include "server/shard.h"
#include "tests/test_util.h"
#include "util/json.h"

namespace auditgame::server {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& name) : path_("persist_e2e_" + name) {
    Remove();
    ::mkdir(path_.c_str(), 0777);
  }
  ~TempDir() { Remove(); }
  const std::string& path() const { return path_; }

 private:
  void Remove() {
    for (int shard = 0; shard < 4; ++shard) {
      const std::string sub = path_ + "/shard-" + std::to_string(shard);
      for (const std::string& name :
           ListNumberedFiles(sub, "snapshot-", ".snap"))
        ::unlink((sub + "/" + name).c_str());
      for (const std::string& name : ListNumberedFiles(sub, "wal-", ".wal"))
        ::unlink((sub + "/" + name).c_str());
      ::rmdir(sub.c_str());
    }
    ::rmdir(path_.c_str());
  }
  std::string path_;
};

service::AuditServiceOptions FastOptions() {
  service::AuditServiceOptions options;
  options.budgets = {2.0, 3.0};
  options.solver_options.ishm.step_size = 0.25;
  options.num_threads = -1;
  return options;
}

/// Thread-safe response sink keyed by request id (one shard keeps each
/// tenant's responses in submission order; ids make the pairing explicit).
class Collector {
 public:
  void operator()(std::vector<Shard::Response> responses) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Shard::Response& response : responses) {
      auto doc = util::JsonValue::Parse(response.payload);
      ASSERT_TRUE(doc.ok()) << doc.status();
      auto id_field = doc->GetNumber("id");
      ASSERT_TRUE(id_field.ok()) << response.payload;
      const int64_t id = static_cast<int64_t>(*id_field);
      by_id_[id] = std::move(response.payload);
    }
  }
  std::map<int64_t, std::string> Take() {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::move(by_id_);
  }

 private:
  std::mutex mutex_;
  std::map<int64_t, std::string> by_id_;
};

/// Drops every "seconds" key anywhere in the document: solve responses
/// embed the cycle's wall time, which legitimately differs between runs.
void StripTimings(util::JsonValue& doc) {
  if (doc.is_object()) {
    doc.as_object().erase("seconds");
    for (auto& [key, value] : doc.as_object()) StripTimings(value);
  } else if (doc.is_array()) {
    for (auto& value : doc.as_array()) StripTimings(value);
  }
}

std::string Normalized(const std::string& payload) {
  auto doc = util::JsonValue::Parse(payload);
  if (!doc.ok()) return "<unparseable:" + payload + ">";
  StripTimings(*doc);
  return doc->Dump();
}

/// One task built exactly as the server's IO thread would: parse the wire
/// payload, keep the verbatim bytes for the WAL.
ShardTask MakeTask(const std::string& payload, bool durable) {
  auto doc = util::JsonValue::Parse(payload);
  EXPECT_TRUE(doc.ok()) << doc.status();
  auto request = ParseRequest(*doc);
  EXPECT_TRUE(request.ok()) << request.status();
  ShardTask task;
  task.conn_id = 1;
  task.request = std::move(*request);
  if (durable) task.wal_payload = payload;
  return task;
}

/// The workload: `cycles` rounds of (ingest, solve_cycle) for two tenants,
/// with per-cycle drift in the alert counts so the runs exercise cold
/// solves, warm solves and cache hits. Returns the wire payloads in
/// submission order; ids are globally unique and encode the position.
std::vector<std::string> MakeWorkload(int first_cycle, int cycles) {
  std::vector<std::string> payloads;
  int64_t id = first_cycle * 100;
  for (int cycle = first_cycle; cycle < first_cycle + cycles; ++cycle) {
    for (const std::string tenant : {"acme", "zeta"}) {
      std::vector<prob::CountDistribution> distributions = {
          prob::CountDistribution::Constant(2 + cycle % 3),
          prob::CountDistribution::Constant(2 + (cycle + 1) % 2)};
      payloads.push_back(MakeIngestRequest(id++, tenant, distributions));
      payloads.push_back(MakeSolveCycleRequest(id++, tenant));
    }
  }
  return payloads;
}

void RunAll(Shard& shard, const std::vector<std::string>& payloads,
            bool durable) {
  shard.Start();
  for (const std::string& payload : payloads) {
    while (!shard.TrySubmit(MakeTask(payload, durable))) {
      std::this_thread::yield();
    }
  }
  shard.BeginDrain();
  shard.Join();
}

DurabilityOptions Durable(const std::string& data_dir) {
  DurabilityOptions options;
  options.data_dir = data_dir;
  options.wal_sync = WalSync::kNone;  // durability logic, not disk latency
  options.snapshot_every_records = 3;  // force a mid-run snapshot + suffix
  options.snapshot_interval_seconds = 0;
  return options;
}

TEST(PersistenceE2eTest, InterruptedRunRecoversBitForBit) {
  const core::GameInstance game = testutil::MakeTinyGame();
  const auto cycle0 = MakeWorkload(0, 1);
  const auto cycle1 = MakeWorkload(1, 1);
  const auto second_half = MakeWorkload(2, 2);

  // Reference: one uninterrupted, non-durable shard over the full stream.
  Collector reference_sink;
  util::Fingerprint reference_fp;
  std::map<int64_t, std::string> reference_responses;
  {
    Shard reference(0, game, FastOptions(), /*queue_capacity=*/8,
                    /*max_batch=*/4, std::ref(reference_sink), nullptr);
    auto all = cycle0;
    all.insert(all.end(), cycle1.begin(), cycle1.end());
    all.insert(all.end(), second_half.begin(), second_half.end());
    RunAll(reference, all, /*durable=*/false);
    reference_fp = reference.StateFingerprint();
    reference_responses = reference_sink.Take();
  }

  // Run A, phase 1: durable shard over the first cycle, drained with a
  // final snapshot.
  TempDir dir("bitforbit");
  {
    Shard a(0, game, FastOptions(), /*queue_capacity=*/8, /*max_batch=*/4,
            [](std::vector<Shard::Response>) {}, nullptr,
            std::make_unique<ShardPersistence>(0, Durable(dir.path())));
    ASSERT_TRUE(a.Recover().ok());
    RunAll(a, cycle0, /*durable=*/true);
    const auto stats = a.Snapshot();
    EXPECT_TRUE(stats.durability);
    EXPECT_EQ(stats.wal_errors, 0);
    EXPECT_EQ(stats.persistence.wal_records, cycle0.size());
  }
  // Phase 2: recover, serve the second cycle, and go down WITHOUT any
  // snapshot — the kill -9 shape. Recovery below must restore phase 1's
  // snapshot and replay phase 2's records from the WAL suffix.
  {
    DurabilityOptions options = Durable(dir.path());
    options.snapshot_on_drain = false;
    options.snapshot_every_records = 0;
    Shard a(0, game, FastOptions(), /*queue_capacity=*/8, /*max_batch=*/4,
            [](std::vector<Shard::Response>) {}, nullptr,
            std::make_unique<ShardPersistence>(0, options));
    ASSERT_TRUE(a.Recover().ok());
    RunAll(a, cycle1, /*durable=*/true);
  }

  // Run B: a fresh shard recovers and serves the second half.
  Collector recovered_sink;
  Shard b(0, game, FastOptions(), /*queue_capacity=*/8, /*max_batch=*/4,
          std::ref(recovered_sink), nullptr,
          std::make_unique<ShardPersistence>(0, Durable(dir.path())));
  ASSERT_TRUE(b.Recover().ok());
  EXPECT_EQ(b.persistence()->Stats().recovery_replayed, cycle1.size());
  RunAll(b, second_half, /*durable=*/true);

  // The recovered shard ends in the reference's exact state...
  EXPECT_EQ(b.StateFingerprint(), reference_fp);

  // ...and answered the second half identically (timing fields aside).
  const auto recovered_responses = recovered_sink.Take();
  ASSERT_EQ(recovered_responses.size(), second_half.size());
  for (const auto& [id, payload] : recovered_responses) {
    auto it = reference_responses.find(id);
    ASSERT_NE(it, reference_responses.end()) << "id " << id;
    EXPECT_EQ(Normalized(payload), Normalized(it->second)) << "id " << id;
  }
}

TEST(PersistenceE2eTest, DrainSnapshotAloneRecovers) {
  // Graceful-shutdown shape: snapshot_on_drain=true writes a final
  // snapshot covering the full WAL, so recovery replays nothing.
  const core::GameInstance game = testutil::MakeTinyGame();
  const auto workload = MakeWorkload(0, 2);
  TempDir dir("drain");
  util::Fingerprint fp_a;
  {
    Shard a(0, game, FastOptions(), /*queue_capacity=*/8, /*max_batch=*/4,
            [](std::vector<Shard::Response>) {}, nullptr,
            std::make_unique<ShardPersistence>(0, Durable(dir.path())));
    ASSERT_TRUE(a.Recover().ok());
    RunAll(a, workload, /*durable=*/true);
    fp_a = a.StateFingerprint();
  }
  Shard b(0, game, FastOptions(), /*queue_capacity=*/8, /*max_batch=*/4,
          [](std::vector<Shard::Response>) {}, nullptr,
          std::make_unique<ShardPersistence>(0, Durable(dir.path())));
  ASSERT_TRUE(b.Recover().ok());
  EXPECT_EQ(b.persistence()->Stats().recovery_replayed, 0u);
  EXPECT_EQ(b.StateFingerprint(), fp_a);
}

TEST(PersistenceE2eTest, RecoveryRefusesConfigMismatch) {
  const core::GameInstance game = testutil::MakeTinyGame();
  TempDir dir("mismatch");
  {
    Shard a(0, game, FastOptions(), /*queue_capacity=*/8, /*max_batch=*/4,
            [](std::vector<Shard::Response>) {}, nullptr,
            std::make_unique<ShardPersistence>(0, Durable(dir.path())));
    ASSERT_TRUE(a.Recover().ok());
    RunAll(a, MakeWorkload(0, 1), /*durable=*/true);
  }
  // Same data, different solver configuration: state recorded under one
  // config must not silently replay under another.
  service::AuditServiceOptions different = FastOptions();
  different.solver_options.ishm.step_size = 0.5;
  Shard b(0, game, different, /*queue_capacity=*/8, /*max_batch=*/4,
          [](std::vector<Shard::Response>) {}, nullptr,
          std::make_unique<ShardPersistence>(0, Durable(dir.path())));
  const util::Status status = b.Recover();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition) << status;
}

}  // namespace
}  // namespace auditgame::server
