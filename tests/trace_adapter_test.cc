// Tests for the real-trace adapters (adversary/trace.h): EMR and credit
// replays are byte-identical for a fixed seed, every cycle yields valid
// renormalized CountDistributions for every alert type, and plugging an
// adapter into ScenarioStream's external-source mode keeps the revisit
// schedule from consuming trace cycles.
#include "adversary/trace.h"

#include <cmath>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "scenario/stream.h"

namespace auditgame::adversary {
namespace {

TraceSpec SmallSpec(TraceKind kind) {
  TraceSpec spec;
  spec.kind = kind;
  spec.seed = 7;
  spec.days_per_cycle = 5;  // short windows keep the refits fast
  spec.applications_per_day = 20;
  return spec;
}

std::unique_ptr<TraceAdapter> MakeAdapter(const TraceSpec& spec) {
  auto adapter = TraceAdapter::Create(spec);
  EXPECT_TRUE(adapter.ok()) << adapter.status();
  return std::move(*adapter);
}

bool SameBits(const std::vector<prob::CountDistribution>& a,
              const std::vector<prob::CountDistribution>& b) {
  if (a.size() != b.size()) return false;
  for (size_t t = 0; t < a.size(); ++t) {
    if (a[t].min_value() != b[t].min_value()) return false;
    const std::vector<double>& pa = a[t].pmf_data();
    const std::vector<double>& pb = b[t].pmf_data();
    if (pa.size() != pb.size()) return false;
    if (!pa.empty() &&
        std::memcmp(pa.data(), pb.data(), pa.size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

void ExpectValidDistributions(
    const std::vector<prob::CountDistribution>& dists, int num_types) {
  ASSERT_EQ(static_cast<int>(dists.size()), num_types);
  for (const prob::CountDistribution& dist : dists) {
    ASSERT_GE(dist.support_size(), 1);
    double total = 0.0;
    for (double p : dist.pmf_data()) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

class TraceAdapterTest : public ::testing::TestWithParam<TraceKind> {};

TEST_P(TraceAdapterTest, ReplayIsByteIdenticalForAFixedSeed) {
  const TraceSpec spec = SmallSpec(GetParam());
  auto left = MakeAdapter(spec);
  auto right = MakeAdapter(spec);
  ASSERT_TRUE(SameBits(left->instance().alert_distributions,
                       right->instance().alert_distributions));
  for (int cycle = 1; cycle <= 4; ++cycle) {
    auto a = left->NextCycle();
    auto b = right->NextCycle();
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_TRUE(SameBits(*a, *b)) << "cycle " << cycle;
  }
  EXPECT_EQ(left->cycle(), 4);

  // A different seed is a different world and a different replay.
  TraceSpec other = spec;
  other.seed = 8;
  auto shifted = MakeAdapter(other);
  auto c = shifted->NextCycle();
  ASSERT_TRUE(c.ok());
  auto d = left->NextCycle();
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(SameBits(*c, *d));
}

TEST_P(TraceAdapterTest, EveryCycleYieldsRenormalizedDistributions) {
  auto adapter = MakeAdapter(SmallSpec(GetParam()));
  const int num_types = adapter->instance().num_types();
  ASSERT_GT(num_types, 0);
  ExpectValidDistributions(adapter->instance().alert_distributions,
                           num_types);
  for (int cycle = 1; cycle <= 4; ++cycle) {
    auto dists = adapter->NextCycle();
    ASSERT_TRUE(dists.ok()) << dists.status();
    ExpectValidDistributions(*dists, num_types);
  }
}

TEST_P(TraceAdapterTest, RevisitCyclesReplayBaselineWithoutConsumingTrace) {
  const TraceSpec spec = SmallSpec(GetParam());
  auto adapter = MakeAdapter(spec);
  const std::vector<prob::CountDistribution> baseline =
      adapter->instance().alert_distributions;

  scenario::StreamSpec stream_spec;
  stream_spec.kind = scenario::StreamKind::kExternal;
  stream_spec.revisit_period = 2;
  scenario::ScenarioStream stream(baseline, stream_spec, adapter.get());

  // A second, identically-specced adapter supplies the expected trace
  // cycles: the stream must interleave baseline revisits (every 2nd cycle)
  // without skipping any of the source's output.
  auto reference = MakeAdapter(spec);
  auto ref1 = reference->NextCycle();
  auto ref2 = reference->NextCycle();
  ASSERT_TRUE(ref1.ok() && ref2.ok());

  auto cycle1 = stream.Next();
  ASSERT_TRUE(cycle1.ok());
  EXPECT_TRUE(SameBits(*cycle1, *ref1));

  auto cycle2 = stream.Next();
  ASSERT_TRUE(cycle2.ok());
  EXPECT_TRUE(SameBits(*cycle2, baseline));
  EXPECT_TRUE(stream.IsRevisit(2));

  auto cycle3 = stream.Next();
  ASSERT_TRUE(cycle3.ok());
  EXPECT_TRUE(SameBits(*cycle3, *ref2));
  EXPECT_EQ(adapter->cycle(), 2);  // the revisit consumed nothing
}

INSTANTIATE_TEST_SUITE_P(Datasets, TraceAdapterTest,
                         ::testing::Values(TraceKind::kEmr,
                                           TraceKind::kCredit),
                         [](const ::testing::TestParamInfo<TraceKind>& info) {
                           return info.param == TraceKind::kEmr ? "Emr"
                                                                : "Credit";
                         });

TEST(TraceKindTest, ParsesFlagNames) {
  auto emr = TraceKindFromName("emr");
  ASSERT_TRUE(emr.ok());
  EXPECT_EQ(*emr, TraceKind::kEmr);
  auto credit = TraceKindFromName("credit");
  ASSERT_TRUE(credit.ok());
  EXPECT_EQ(*credit, TraceKind::kCredit);
  EXPECT_FALSE(TraceKindFromName("syslog").ok());
  EXPECT_FALSE(TraceAdapter::Create([] {
                 TraceSpec spec;
                 spec.days_per_cycle = 1;
                 return spec;
               }())
                   .ok());
}

}  // namespace
}  // namespace auditgame::adversary
