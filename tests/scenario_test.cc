#include "scenario/generator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/game_io.h"
#include "prob/count_distribution.h"
#include "scenario/stream.h"

namespace auditgame::scenario {
namespace {

std::vector<ScenarioSpec> AllFamilySpecs() {
  std::vector<ScenarioSpec> specs;
  for (const Family family :
       {Family::kZipfAlerts, Family::kCorrelatedGroups,
        Family::kUniformBaseline}) {
    ScenarioSpec spec;
    spec.family = family;
    spec.num_types = 7;
    spec.num_adversaries = 5;
    spec.seed = 42;
    specs.push_back(spec);
  }
  return specs;
}

TEST(ScenarioGeneratorTest, SameSeedSameGameBytes) {
  for (const ScenarioSpec& spec : AllFamilySpecs()) {
    const auto a = Generate(spec);
    const auto b = Generate(spec);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // Content fingerprint equality is exact double-bit equality of every
    // field the serving layer keys on — the property that makes generated
    // games valid policy-cache keys.
    EXPECT_EQ(core::FingerprintGame(*a), core::FingerprintGame(*b))
        << "family " << static_cast<int>(spec.family);
  }
}

TEST(ScenarioGeneratorTest, DifferentSeedDifferentGameBytes) {
  for (ScenarioSpec spec : AllFamilySpecs()) {
    const auto a = Generate(spec);
    spec.seed = 43;
    const auto b = Generate(spec);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_NE(core::FingerprintGame(*a), core::FingerprintGame(*b))
        << "family " << static_cast<int>(spec.family);
  }
}

TEST(ScenarioGeneratorTest, GeneratedGamesValidate) {
  for (const ScenarioSpec& spec : AllFamilySpecs()) {
    const auto instance = Generate(spec);
    ASSERT_TRUE(instance.ok());
    EXPECT_TRUE(instance->Validate().ok());
    EXPECT_EQ(instance->num_types(), spec.num_types);
    EXPECT_EQ(static_cast<int>(instance->adversaries.size()),
              spec.num_adversaries);
  }
}

TEST(ScenarioGeneratorTest, ZipfMeansAreHeavyTailed) {
  ScenarioSpec spec;
  spec.family = Family::kZipfAlerts;
  spec.num_types = 10;
  spec.zipf_exponent = 1.1;
  spec.base_alert_mean = 24.0;
  const auto instance = Generate(spec);
  ASSERT_TRUE(instance.ok());
  std::vector<double> means;
  for (const auto& dist : instance->alert_distributions) {
    means.push_back(dist.Mean());
  }
  // Monotone nonincreasing in rank, and the head dominates the tail by
  // roughly 10^1.1 (truncation at 0 blunts it a little).
  for (size_t t = 1; t < means.size(); ++t) {
    EXPECT_LE(means[t], means[t - 1] + 1e-9) << "rank " << t;
  }
  EXPECT_GE(means.front() / means.back(), 5.0);
}

TEST(ScenarioGeneratorTest, CorrelatedVictimsStayInsideOneGroup) {
  ScenarioSpec spec;
  spec.family = Family::kCorrelatedGroups;
  spec.num_types = 9;
  spec.group_size = 3;
  const auto instance = Generate(spec);
  ASSERT_TRUE(instance.ok());
  for (const auto& adversary : instance->adversaries) {
    for (const auto& victim : adversary.victims) {
      int first_group = -1;
      double mass = 0.0;
      int primary_count = 0;
      for (int t = 0; t < spec.num_types; ++t) {
        const double p = victim.type_probs[static_cast<size_t>(t)];
        if (p <= 0) continue;
        mass += p;
        const int group = t / spec.group_size;
        if (first_group < 0) first_group = group;
        EXPECT_EQ(group, first_group) << "type " << t;
        if (p == spec.primary_type_prob) ++primary_count;
      }
      EXPECT_EQ(primary_count, 1);
      EXPECT_LE(mass, 1.0 + 1e-12);
    }
  }
}

TEST(ScenarioGeneratorTest, BudgetSweepEndpointsAndSpacing) {
  EXPECT_TRUE(BudgetSweep(2.0, 10.0, 0).empty());
  EXPECT_EQ(BudgetSweep(2.0, 10.0, 1), std::vector<double>({2.0}));
  const std::vector<double> sweep = BudgetSweep(2.0, 10.0, 5);
  ASSERT_EQ(sweep.size(), 5u);
  EXPECT_DOUBLE_EQ(sweep.front(), 2.0);
  EXPECT_DOUBLE_EQ(sweep.back(), 10.0);
  for (size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_NEAR(sweep[i] - sweep[i - 1], 2.0, 1e-12);
  }
}

TEST(ScenarioGeneratorTest, CatalogNamesResolve) {
  ASSERT_FALSE(Catalog().empty());
  for (const NamedScenario& entry : Catalog()) {
    const auto spec = SpecByName(entry.name);
    ASSERT_TRUE(spec.ok()) << entry.name;
    EXPECT_TRUE(Generate(*spec).ok()) << entry.name;
  }
  EXPECT_FALSE(SpecByName("no-such-scenario").ok());
}

TEST(ScenarioGeneratorTest, InvalidSpecsAreRejected) {
  ScenarioSpec spec;
  spec.num_types = 0;
  EXPECT_FALSE(Generate(spec).ok());
  spec = ScenarioSpec();
  spec.primary_type_prob = 1.5;
  EXPECT_FALSE(Generate(spec).ok());
  spec = ScenarioSpec();
  spec.benefit_lo = 5.0;
  spec.benefit_hi = 1.0;
  EXPECT_FALSE(Generate(spec).ok());
}

// ---- Streams -------------------------------------------------------------

bool SamePmf(const prob::CountDistribution& a,
             const prob::CountDistribution& b) {
  if (a.min_value() != b.min_value() || a.max_value() != b.max_value()) {
    return false;
  }
  for (int z = a.min_value(); z <= a.max_value(); ++z) {
    if (a.Pmf(z) != b.Pmf(z)) return false;
  }
  return true;
}

std::vector<prob::CountDistribution> TestBaseline() {
  return {*prob::CountDistribution::DiscretizedGaussian(6.0, 2.0, 1, 11),
          *prob::CountDistribution::DiscretizedGaussian(4.0, 1.5, 1, 9)};
}

TEST(ScenarioStreamTest, SameSpecSameCycleBytes) {
  for (const StreamKind kind :
       {StreamKind::kJitter, StreamKind::kRandomWalk, StreamKind::kSeasonal}) {
    StreamSpec spec;
    spec.kind = kind;
    spec.seed = 9;
    ScenarioStream a(TestBaseline(), spec);
    ScenarioStream b(TestBaseline(), spec);
    for (int cycle = 0; cycle < 8; ++cycle) {
      const auto da = a.Next();
      const auto db = b.Next();
      ASSERT_TRUE(da.ok());
      ASSERT_TRUE(db.ok());
      ASSERT_EQ(da->size(), db->size());
      for (size_t t = 0; t < da->size(); ++t) {
        EXPECT_TRUE(SamePmf((*da)[t], (*db)[t]))
            << "kind " << static_cast<int>(kind) << " cycle " << cycle;
      }
    }
  }
}

TEST(ScenarioStreamTest, RevisitCyclesReplayTheBaselineExactly) {
  StreamSpec spec;
  spec.kind = StreamKind::kJitter;
  spec.revisit_period = 3;
  ScenarioStream stream(TestBaseline(), spec);
  const auto baseline = TestBaseline();
  for (int cycle = 1; cycle <= 9; ++cycle) {
    const auto dists = stream.Next();
    ASSERT_TRUE(dists.ok());
    const bool is_revisit = cycle % 3 == 0;
    EXPECT_EQ(stream.IsRevisit(cycle), is_revisit);
    EXPECT_EQ(SamePmf((*dists)[0], baseline[0]), is_revisit) << cycle;
  }
}

TEST(ScenarioStreamTest, RandomWalkAccumulatesDriftBeyondJitter) {
  StreamSpec spec;
  spec.drift_amplitude = 0.1;
  spec.revisit_period = 0;
  spec.seed = 5;
  spec.kind = StreamKind::kJitter;
  ScenarioStream jitter(TestBaseline(), spec);
  spec.kind = StreamKind::kRandomWalk;
  ScenarioStream walk(TestBaseline(), spec);
  const auto baseline = TestBaseline();
  double jitter_drift = 0.0;
  double walk_drift = 0.0;
  for (int cycle = 0; cycle < 40; ++cycle) {
    const auto dj = jitter.Next();
    const auto dw = walk.Next();
    ASSERT_TRUE(dj.ok());
    ASSERT_TRUE(dw.ok());
    jitter_drift = prob::TotalVariationDistance(baseline[0], (*dj)[0]);
    walk_drift = prob::TotalVariationDistance(baseline[0], (*dw)[0]);
  }
  // After 40 steps the walk has wandered; the jitter is still a bounded
  // perturbation of the baseline.
  EXPECT_GT(walk_drift, jitter_drift);
}

TEST(ScenarioStreamTest, SeasonalTiltMovesTheMeanBothWays) {
  StreamSpec spec;
  spec.kind = StreamKind::kSeasonal;
  spec.drift_amplitude = 0.2;
  spec.revisit_period = 0;
  spec.season_period = 8;
  ScenarioStream stream(TestBaseline(), spec);
  const double base_mean = TestBaseline()[0].Mean();
  double lowest = base_mean, highest = base_mean;
  for (int cycle = 0; cycle < 8; ++cycle) {
    const auto dists = stream.Next();
    ASSERT_TRUE(dists.ok());
    const double mean = (*dists)[0].Mean();
    lowest = std::min(lowest, mean);
    highest = std::max(highest, mean);
  }
  EXPECT_GT(highest, base_mean + 0.1);
  EXPECT_LT(lowest, base_mean - 0.1);
}

TEST(ExponentialTiltTest, ZeroThetaIsIdentityAndSignMovesMean) {
  const auto baseline = TestBaseline();
  const auto same = ExponentialTilt(baseline[0], 0.0);
  ASSERT_TRUE(same.ok());
  EXPECT_NEAR(same->Mean(), baseline[0].Mean(), 1e-12);
  const auto up = ExponentialTilt(baseline[0], 0.3);
  const auto down = ExponentialTilt(baseline[0], -0.3);
  ASSERT_TRUE(up.ok());
  ASSERT_TRUE(down.ok());
  EXPECT_GT(up->Mean(), baseline[0].Mean());
  EXPECT_LT(down->Mean(), baseline[0].Mean());
}

}  // namespace
}  // namespace auditgame::scenario
