// File-format and recovery-invariant tests for the durability layer:
// atomic snapshots, WAL segment scan, torn-tail truncation (every
// byte-truncation of the final record must recover cleanly), segment
// rotation, and snapshot/WAL pruning.
#include "server/durability.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace auditgame::server {
namespace {

/// A unique per-test scratch directory under the build tree.
class TempDir {
 public:
  explicit TempDir(const std::string& name) : path_("durability_test_" + name) {
    Remove();
    ::mkdir(path_.c_str(), 0777);
  }
  ~TempDir() { Remove(); }
  const std::string& path() const { return path_; }

 private:
  void Remove() {
    const std::vector<std::string> kinds = {"snapshot-", "wal-"};
    for (const std::string& prefix : kinds) {
      for (const char* suffix : {".snap", ".wal"}) {
        for (const std::string& name :
             ListNumberedFiles(path_, prefix, suffix)) {
          ::unlink((path_ + "/" + name).c_str());
        }
      }
    }
    for (int shard = 0; shard < 8; ++shard) {
      const std::string sub = path_ + "/shard-" + std::to_string(shard);
      for (const std::string& name : ListNumberedFiles(sub, "snapshot-", ".snap"))
        ::unlink((sub + "/" + name).c_str());
      for (const std::string& name : ListNumberedFiles(sub, "wal-", ".wal"))
        ::unlink((sub + "/" + name).c_str());
      ::rmdir(sub.c_str());
    }
    ::rmdir(path_.c_str());
  }
  std::string path_;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << data;
}

TEST(SnapshotFileTest, RoundTrip) {
  TempDir dir("snapshot_roundtrip");
  const std::string path = dir.path() + "/snapshot-00000000000000000007.snap";
  const std::string body = "serialized shard state \x00\x01\x02 with nuls";
  ASSERT_TRUE(WriteSnapshotFile(path, /*shard=*/3, /*seq=*/7, /*wal_lsn=*/42,
                                body)
                  .ok());
  auto contents = ReadSnapshotFile(path);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_EQ(contents->shard, 3u);
  EXPECT_EQ(contents->seq, 7u);
  EXPECT_EQ(contents->wal_lsn, 42u);
  EXPECT_EQ(contents->body, body);
  // No .tmp left behind.
  struct stat st;
  EXPECT_NE(::stat((path + ".tmp").c_str(), &st), 0);
}

TEST(SnapshotFileTest, CorruptionIsDetected) {
  TempDir dir("snapshot_corrupt");
  const std::string path = dir.path() + "/snapshot-00000000000000000001.snap";
  ASSERT_TRUE(
      WriteSnapshotFile(path, /*shard=*/0, /*seq=*/1, /*wal_lsn=*/5, "body")
          .ok());
  std::string data = ReadFile(path);

  // Flip one body byte: body CRC must catch it.
  std::string bad = data;
  bad.back() ^= 0x01;
  WriteFile(path, bad);
  EXPECT_FALSE(ReadSnapshotFile(path).ok());

  // Flip one header byte: header CRC must catch it.
  bad = data;
  bad[10] ^= 0x01;
  WriteFile(path, bad);
  EXPECT_FALSE(ReadSnapshotFile(path).ok());

  // Truncated body: length check must catch it.
  WriteFile(path, data.substr(0, data.size() - 1));
  EXPECT_FALSE(ReadSnapshotFile(path).ok());

  // Intact bytes still verify (the writer-side data was fine all along).
  WriteFile(path, data);
  EXPECT_TRUE(ReadSnapshotFile(path).ok());
}

std::string MakeSegment(uint32_t shard, uint64_t start_lsn,
                        const std::vector<std::string>& payloads) {
  std::string data = EncodeWalSegmentHeader(shard, start_lsn);
  uint64_t lsn = start_lsn;
  for (const std::string& payload : payloads) {
    data += EncodeWalRecord(lsn++, payload);
  }
  return data;
}

TEST(WalSegmentTest, ScanReadsAllRecordsInOrder) {
  TempDir dir("wal_scan");
  const std::string path = dir.path() + "/wal-00000000000000000005.wal";
  WriteFile(path, MakeSegment(2, 5, {"alpha", "", "gamma"}));

  std::vector<WalRecord> records;
  auto scan = ScanWalSegment(
      path, [&](const WalRecord& record) { records.push_back(record); });
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(scan->shard, 2u);
  EXPECT_EQ(scan->start_lsn, 5u);
  EXPECT_EQ(scan->records, 3u);
  EXPECT_EQ(scan->last_lsn, 7u);
  EXPECT_TRUE(scan->torn_reason.empty());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].lsn, 5u);
  EXPECT_EQ(records[0].payload, "alpha");
  EXPECT_EQ(records[1].payload, "");
  EXPECT_EQ(records[2].payload, "gamma");
}

TEST(WalSegmentTest, EveryByteTruncationOfLastRecordRecoversCleanly) {
  // The crash-consistency invariant: a kill -9 can cut the final record at
  // ANY byte boundary, and the scan must (a) not error, (b) keep every
  // complete record, (c) report a truncation point that drops only the
  // torn record.
  TempDir dir("wal_torn");
  const std::string intact = MakeSegment(0, 1, {"first", "second"});
  const std::string with_tail = intact + EncodeWalRecord(3, "torn-payload");
  const std::string path = dir.path() + "/wal-00000000000000000001.wal";

  // cut == intact.size() is a clean end-of-segment, not a torn tail.
  {
    WriteFile(path, intact);
    auto scan = ScanWalSegment(path, nullptr);
    ASSERT_TRUE(scan.ok());
    EXPECT_EQ(scan->records, 2u);
    EXPECT_TRUE(scan->torn_reason.empty());
  }
  for (size_t cut = intact.size() + 1; cut < with_tail.size(); ++cut) {
    WriteFile(path, with_tail.substr(0, cut));
    std::vector<WalRecord> records;
    auto scan = ScanWalSegment(
        path, [&](const WalRecord& record) { records.push_back(record); });
    ASSERT_TRUE(scan.ok()) << "cut at " << cut << ": " << scan.status();
    EXPECT_EQ(scan->records, 2u) << "cut at " << cut;
    EXPECT_EQ(scan->last_lsn, 2u) << "cut at " << cut;
    EXPECT_EQ(scan->valid_bytes, intact.size()) << "cut at " << cut;
    EXPECT_FALSE(scan->torn_reason.empty()) << "cut at " << cut;
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[1].payload, "second");
  }

  // The full record scans clean again.
  WriteFile(path, with_tail);
  auto scan = ScanWalSegment(path, nullptr);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records, 3u);
  EXPECT_TRUE(scan->torn_reason.empty());
}

TEST(WalSegmentTest, CorruptRecordStopsTheScanAtTheLastValidRecord) {
  TempDir dir("wal_bitflip");
  std::string data = MakeSegment(0, 1, {"aaaa", "bbbb", "cccc"});
  // Flip a byte in the middle record's payload.
  const size_t header = EncodeWalSegmentHeader(0, 1).size();
  const size_t record1 = EncodeWalRecord(1, "aaaa").size();
  data[header + record1 + 16 + 1] ^= 0x40;  // second record's payload
  const std::string path = dir.path() + "/wal-00000000000000000001.wal";
  WriteFile(path, data);

  auto scan = ScanWalSegment(path, nullptr);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(scan->records, 1u);
  EXPECT_EQ(scan->last_lsn, 1u);
  EXPECT_FALSE(scan->torn_reason.empty());
}

TEST(WalSegmentTest, LsnDiscontinuityStopsTheScan) {
  TempDir dir("wal_gap");
  std::string data = EncodeWalSegmentHeader(0, 1);
  data += EncodeWalRecord(1, "one");
  data += EncodeWalRecord(3, "three");  // skips LSN 2
  const std::string path = dir.path() + "/wal-00000000000000000001.wal";
  WriteFile(path, data);
  auto scan = ScanWalSegment(path, nullptr);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records, 1u);
  EXPECT_FALSE(scan->torn_reason.empty());
}

TEST(WalSegmentTest, HeaderCorruptionIsAnErrorNotATornTail) {
  TempDir dir("wal_badheader");
  std::string data = MakeSegment(0, 1, {"x"});
  data[9] ^= 0x01;  // inside the header, after the magic
  const std::string path = dir.path() + "/wal-00000000000000000001.wal";
  WriteFile(path, data);
  EXPECT_FALSE(ScanWalSegment(path, nullptr).ok());
}

DurabilityOptions TestOptions(const std::string& data_dir) {
  DurabilityOptions options;
  options.data_dir = data_dir;
  options.wal_sync = WalSync::kNone;  // tests don't need real fsyncs
  options.snapshot_every_records = 0;
  options.snapshot_interval_seconds = 0;
  return options;
}

TEST(ShardPersistenceTest, AppendCommitRecoverRoundTrip) {
  TempDir dir("persist_roundtrip");
  std::vector<std::string> seen;
  {
    ShardPersistence persistence(0, TestOptions(dir.path()));
    ASSERT_TRUE(persistence
                    .Recover([](const SnapshotContents&) {
                      return util::OkStatus();
                    },
                             [](const WalRecord&) { return util::OkStatus(); })
                    .ok());
    EXPECT_EQ(persistence.next_lsn(), 1u);
    for (const char* payload : {"r1", "r2", "r3"}) {
      auto lsn = persistence.AppendWal(payload);
      ASSERT_TRUE(lsn.ok()) << lsn.status();
    }
    ASSERT_TRUE(persistence.CommitBatch().ok());
    EXPECT_EQ(persistence.next_lsn(), 4u);
  }
  {
    ShardPersistence persistence(0, TestOptions(dir.path()));
    ASSERT_TRUE(persistence
                    .Recover(
                        [](const SnapshotContents&) {
                          ADD_FAILURE() << "no snapshot was written";
                          return util::OkStatus();
                        },
                        [&](const WalRecord& record) {
                          seen.push_back(record.payload);
                          return util::OkStatus();
                        })
                    .ok());
    EXPECT_EQ(persistence.next_lsn(), 4u);
    EXPECT_EQ(persistence.Stats().recovery_replayed, 3u);
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"r1", "r2", "r3"}));
}

TEST(ShardPersistenceTest, SnapshotSkipsReplayedPrefix) {
  TempDir dir("persist_snapshot");
  {
    ShardPersistence persistence(0, TestOptions(dir.path()));
    ASSERT_TRUE(persistence
                    .Recover([](const SnapshotContents&) {
                      return util::OkStatus();
                    },
                             [](const WalRecord&) { return util::OkStatus(); })
                    .ok());
    for (const char* payload : {"a", "b", "c", "d"}) {
      ASSERT_TRUE(persistence.AppendWal(payload).ok());
      ASSERT_TRUE(persistence.CommitBatch().ok());
    }
    // Snapshot reflecting LSNs 1..3 only.
    ASSERT_TRUE(persistence.FinalSnapshot("state-after-3", 3).ok());
  }
  std::vector<std::string> replayed;
  bool restored = false;
  ShardPersistence persistence(0, TestOptions(dir.path()));
  ASSERT_TRUE(persistence
                  .Recover(
                      [&](const SnapshotContents& snapshot) {
                        restored = true;
                        EXPECT_EQ(snapshot.body, "state-after-3");
                        EXPECT_EQ(snapshot.wal_lsn, 3u);
                        return util::OkStatus();
                      },
                      [&](const WalRecord& record) {
                        replayed.push_back(record.payload);
                        return util::OkStatus();
                      })
                  .ok());
  EXPECT_TRUE(restored);
  EXPECT_EQ(replayed, (std::vector<std::string>{"d"}));
  EXPECT_EQ(persistence.next_lsn(), 5u);
}

TEST(ShardPersistenceTest, TornTailIsTruncatedOnRecovery) {
  TempDir dir("persist_torn");
  std::string wal_path;
  {
    ShardPersistence persistence(0, TestOptions(dir.path()));
    ASSERT_TRUE(persistence
                    .Recover([](const SnapshotContents&) {
                      return util::OkStatus();
                    },
                             [](const WalRecord&) { return util::OkStatus(); })
                    .ok());
    ASSERT_TRUE(persistence.AppendWal("keep-me").ok());
    ASSERT_TRUE(persistence.CommitBatch().ok());
  }
  const std::string shard_dir = ShardPersistence::ShardDir(dir.path(), 0);
  const auto segments = ListNumberedFiles(shard_dir, "wal-", ".wal");
  ASSERT_EQ(segments.size(), 1u);
  wal_path = shard_dir + "/" + segments[0];

  // Simulate the kill -9: append half a record by hand.
  const std::string full = ReadFile(wal_path);
  const std::string torn = EncodeWalRecord(2, "torn-record");
  WriteFile(wal_path, full + torn.substr(0, torn.size() / 2));

  std::vector<std::string> replayed;
  {
    ShardPersistence persistence(0, TestOptions(dir.path()));
    ASSERT_TRUE(persistence
                    .Recover([](const SnapshotContents&) {
                      return util::OkStatus();
                    },
                             [&](const WalRecord& record) {
                               replayed.push_back(record.payload);
                               return util::OkStatus();
                             })
                    .ok());
    EXPECT_EQ(replayed, (std::vector<std::string>{"keep-me"}));
    EXPECT_EQ(persistence.next_lsn(), 2u);
  }
  // The torn bytes are gone from disk: a later scan is clean.
  EXPECT_EQ(ReadFile(wal_path), full);
  auto scan = ScanWalSegment(wal_path, nullptr);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->torn_reason.empty());
}

TEST(ShardPersistenceTest, SegmentsRotateAndPrune) {
  TempDir dir("persist_rotate");
  DurabilityOptions options = TestOptions(dir.path());
  options.wal_segment_bytes = 256;  // force rotation quickly
  options.snapshots_to_keep = 1;
  const std::string shard_dir = ShardPersistence::ShardDir(dir.path(), 0);
  {
    ShardPersistence persistence(0, options);
    ASSERT_TRUE(persistence
                    .Recover([](const SnapshotContents&) {
                      return util::OkStatus();
                    },
                             [](const WalRecord&) { return util::OkStatus(); })
                    .ok());
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(
          persistence.AppendWal("payload-payload-payload-" + std::to_string(i))
              .ok());
      ASSERT_TRUE(persistence.CommitBatch().ok());
    }
    EXPECT_GT(ListNumberedFiles(shard_dir, "wal-", ".wal").size(), 2u);
    // A snapshot covering everything lets pruning drop all but the active
    // segment, and retention keeps exactly one snapshot.
    ASSERT_TRUE(persistence.FinalSnapshot("all-32", 32).ok());
    ASSERT_TRUE(persistence.FinalSnapshot("all-32-again", 32).ok());
  }
  EXPECT_EQ(ListNumberedFiles(shard_dir, "snapshot-", ".snap").size(), 1u);
  EXPECT_EQ(ListNumberedFiles(shard_dir, "wal-", ".wal").size(), 1u);

  // Everything still recovers: snapshot + empty-or-short suffix.
  ShardPersistence persistence(0, options);
  bool restored = false;
  ASSERT_TRUE(persistence
                  .Recover(
                      [&](const SnapshotContents& snapshot) {
                        restored = true;
                        EXPECT_EQ(snapshot.body, "all-32-again");
                        return util::OkStatus();
                      },
                      [](const WalRecord&) { return util::OkStatus(); })
                  .ok());
  EXPECT_TRUE(restored);
  EXPECT_EQ(persistence.next_lsn(), 33u);
}

TEST(ShardPersistenceTest, CorruptNonFinalSegmentRefusesRecovery) {
  TempDir dir("persist_midcorrupt");
  DurabilityOptions options = TestOptions(dir.path());
  options.wal_segment_bytes = 128;
  {
    ShardPersistence persistence(0, options);
    ASSERT_TRUE(persistence
                    .Recover([](const SnapshotContents&) {
                      return util::OkStatus();
                    },
                             [](const WalRecord&) { return util::OkStatus(); })
                    .ok());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(
          persistence.AppendWal("long-enough-payload-to-rotate-segments-" +
                                std::to_string(i))
              .ok());
      ASSERT_TRUE(persistence.CommitBatch().ok());
    }
  }
  const std::string shard_dir = ShardPersistence::ShardDir(dir.path(), 0);
  const auto segments = ListNumberedFiles(shard_dir, "wal-", ".wal");
  ASSERT_GE(segments.size(), 2u);
  // Chop the FIRST segment: that is corruption, not a crash artifact.
  const std::string first = shard_dir + "/" + segments[0];
  const std::string data = ReadFile(first);
  WriteFile(first, data.substr(0, data.size() - 3));

  ShardPersistence persistence(0, options);
  EXPECT_FALSE(persistence
                   .Recover([](const SnapshotContents&) {
                     return util::OkStatus();
                   },
                            [](const WalRecord&) { return util::OkStatus(); })
                   .ok());
}

TEST(ShardPersistenceTest, WalSyncNames) {
  EXPECT_STREQ(WalSyncName(WalSync::kBatch), "batch");
  ASSERT_TRUE(WalSyncFromName("always").ok());
  EXPECT_EQ(*WalSyncFromName("none"), WalSync::kNone);
  EXPECT_FALSE(WalSyncFromName("sometimes").ok());
}

}  // namespace
}  // namespace auditgame::server
