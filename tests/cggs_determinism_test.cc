// The cross-cutting determinism contract of the numeric-kernel layer: a
// CGGS solve produces a byte-identical SolveResult fingerprint under every
// {kernel backend} x {pricing thread count} combination. The kernels'
// canonical blocked summation order makes scalar and SIMD bit-identical
// (math/kernels.h), and the pricing path's preassigned scratch slots make
// thread count result-neutral — this test pins both at once, over 20
// generated games spanning the scenario families and both detection modes.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/detection.h"
#include "core/game.h"
#include "math/kernels.h"
#include "scenario/generator.h"
#include "solver/registry.h"
#include "solver/solver.h"
#include "util/serializer.h"

namespace auditgame {
namespace {

class CggsDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override {
    // The kernel backend is process-global; leave it as we found it.
    math::SetBackend(initial_backend_);
  }

 private:
  math::Backend initial_backend_ = math::ActiveBackend();
};

scenario::ScenarioSpec SpecForGame(int index) {
  scenario::ScenarioSpec spec;
  switch (index % 3) {
    case 0:
      spec.family = scenario::Family::kZipfAlerts;
      spec.base_alert_mean = 10.0;
      break;
    case 1:
      spec.family = scenario::Family::kCorrelatedGroups;
      spec.group_size = 2;
      break;
    default:
      spec.family = scenario::Family::kUniformBaseline;
      break;
  }
  spec.num_types = 4 + index % 2;
  spec.num_adversaries = 3;
  spec.victims_per_adversary = 3;
  spec.seed = static_cast<uint64_t>(500 + index);
  return spec;
}

std::vector<double> FlooredMeanThresholds(const core::GameInstance& instance) {
  std::vector<double> thresholds;
  for (const auto& dist : instance.alert_distributions) {
    thresholds.push_back(std::floor(dist.Mean()));
  }
  return thresholds;
}

// Solves game `index` under the given backend and thread count and returns
// the SolveResult fingerprint (timing fields excluded by construction).
util::Fingerprint SolveFingerprint(int index, math::Backend backend,
                                   int pricing_threads) {
  EXPECT_TRUE(math::SetBackend(backend));
  const auto instance = scenario::Generate(SpecForGame(index));
  EXPECT_TRUE(instance.ok()) << index;
  const auto compiled = core::Compile(*instance);
  EXPECT_TRUE(compiled.ok()) << index;
  const double budget = 1.5 * instance->num_types();

  core::DetectionModel::Options detection_options;
  if (index % 4 == 3) {
    // Every fourth game prices through the Monte-Carlo estimator, whose
    // detection terms take the branchy blocked-accumulator path rather
    // than the dense kernel reductions.
    detection_options.mode = core::DetectionModel::Mode::kMonteCarlo;
    detection_options.mc_samples = 400;
  }
  auto detection =
      core::DetectionModel::Create(*instance, budget, detection_options);
  EXPECT_TRUE(detection.ok()) << index;

  solver::SolverOptions options;
  options.cggs.pricing_threads = pricing_threads;
  auto cggs = solver::Create("cggs", options);
  EXPECT_TRUE(cggs.ok());
  solver::SolveRequest request;
  request.thresholds = FlooredMeanThresholds(*instance);
  auto result = (*cggs)->Solve(*compiled, *detection, request);
  EXPECT_TRUE(result.ok()) << index;
  return util::FingerprintState(*result);
}

TEST_F(CggsDeterminismTest, FingerprintsIdenticalAcrossBackendsAndThreads) {
  const bool simd = math::SimdAvailable();
  if (!simd) {
    // Scalar-only build (-DAUDIT_ENABLE_SIMD=OFF or no SSE2): the thread
    // half of the matrix still runs below; the backend half is vacuous.
    GTEST_LOG_(INFO) << "SIMD backend unavailable; comparing thread counts "
                        "under the scalar backend only";
  }
  for (int game = 0; game < 20; ++game) {
    const util::Fingerprint reference =
        SolveFingerprint(game, math::Backend::kScalar, 1);
    for (const int threads : {1, 2, 4}) {
      const util::Fingerprint scalar =
          SolveFingerprint(game, math::Backend::kScalar, threads);
      EXPECT_EQ(reference.ToHex(), scalar.ToHex())
          << "game " << game << " scalar threads=" << threads;
      if (simd) {
        const util::Fingerprint vectorized =
            SolveFingerprint(game, math::Backend::kSimd, threads);
        EXPECT_EQ(reference.ToHex(), vectorized.ToHex())
            << "game " << game << " simd (" << math::BackendName()
            << ") threads=" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace auditgame
