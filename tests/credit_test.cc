#include "data/credit.h"

#include <gtest/gtest.h>

namespace auditgame::data {
namespace {

CreditApplicant Applicant(CheckingStatus checking, bool unskilled,
                          bool critical) {
  CreditApplicant a;
  a.id = "test";
  a.checking = checking;
  a.unskilled = unskilled;
  a.critical_account = critical;
  return a;
}

int PurposeIndex(const std::string& name) {
  for (int p = 0; p < kCreditNumPurposes; ++p) {
    if (name == kCreditPurposes[p]) return p;
  }
  return -1;
}

TEST(CreditRulesTest, NoCheckingMatchesAnyPurpose) {
  audit::RuleEngine rules = BuildCreditRules();
  const CreditApplicant a = Applicant(CheckingStatus::kNone, false, false);
  for (int p = 0; p < kCreditNumPurposes; ++p) {
    const auto match = rules.Match(MakeCreditEvent(a, p));
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->first, 0);
  }
}

TEST(CreditRulesTest, NegativeCheckingNewCarOrEducation) {
  audit::RuleEngine rules = BuildCreditRules();
  const CreditApplicant a = Applicant(CheckingStatus::kNegative, false, false);
  auto match = rules.Match(MakeCreditEvent(a, PurposeIndex("new car")));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->first, 1);
  match = rules.Match(MakeCreditEvent(a, PurposeIndex("education")));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->first, 1);
  EXPECT_FALSE(
      rules.Match(MakeCreditEvent(a, PurposeIndex("furniture"))).has_value());
}

TEST(CreditRulesTest, PositiveUnskilledRules) {
  audit::RuleEngine rules = BuildCreditRules();
  const CreditApplicant a = Applicant(CheckingStatus::kPositive, true, false);
  auto match = rules.Match(MakeCreditEvent(a, PurposeIndex("education")));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->first, 2);
  match = rules.Match(MakeCreditEvent(a, PurposeIndex("appliance")));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->first, 3);
  EXPECT_FALSE(
      rules.Match(MakeCreditEvent(a, PurposeIndex("new car"))).has_value());
}

TEST(CreditRulesTest, PositiveCriticalBusiness) {
  audit::RuleEngine rules = BuildCreditRules();
  const CreditApplicant a = Applicant(CheckingStatus::kPositive, false, true);
  auto match = rules.Match(MakeCreditEvent(a, PurposeIndex("business")));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->first, 4);
  EXPECT_FALSE(
      rules.Match(MakeCreditEvent(a, PurposeIndex("repairs"))).has_value());
}

TEST(CreditRulesTest, SkilledNormalPositiveIsBenign) {
  audit::RuleEngine rules = BuildCreditRules();
  const CreditApplicant a = Applicant(CheckingStatus::kPositive, false, false);
  for (int p = 0; p < kCreditNumPurposes; ++p) {
    EXPECT_FALSE(rules.Match(MakeCreditEvent(a, p)).has_value());
  }
}

TEST(CreditWorldTest, DeterministicAndComplete) {
  const auto a = GenerateCreditWorld();
  const auto b = GenerateCreditWorld();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->pair_types, b->pair_types);
  std::vector<bool> seen(kCreditNumTypes, false);
  for (const auto& row : a->pair_types) {
    for (int type : row) {
      if (type >= 0) seen[static_cast<size_t>(type)] = true;
    }
  }
  for (int t = 0; t < kCreditNumTypes; ++t) EXPECT_TRUE(seen[t]) << t;
}

TEST(CreditWorldTest, MarginalsApproximatelyRespected) {
  CreditConfig config;
  config.num_applicants = 2000;  // large sample for tight marginals
  const auto world = GenerateCreditWorld(config);
  ASSERT_TRUE(world.ok());
  int no_checking = 0, unskilled = 0;
  for (const auto& applicant : world->applicants) {
    if (applicant.checking == CheckingStatus::kNone) ++no_checking;
    if (applicant.unskilled) ++unskilled;
  }
  EXPECT_NEAR(no_checking / 2000.0, config.p_no_checking, 0.04);
  EXPECT_NEAR(unskilled / 2000.0, config.p_unskilled, 0.04);
}

TEST(CreditGameTest, MatchesTableIX) {
  const auto instance = MakeCreditGame();
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->num_types(), kCreditNumTypes);
  EXPECT_EQ(instance->adversaries.size(), 100u);
  for (int t = 0; t < kCreditNumTypes; ++t) {
    EXPECT_NEAR(instance->alert_distributions[t].Mean(), kCreditAlertMeans[t],
                kCreditAlertStds[t] * 0.2 + 1.0);
  }
  for (const auto& adversary : instance->adversaries) {
    EXPECT_EQ(adversary.victims.size(),
              static_cast<size_t>(kCreditNumPurposes));
    EXPECT_TRUE(adversary.can_opt_out);
    for (const auto& victim : adversary.victims) {
      EXPECT_DOUBLE_EQ(victim.penalty, 20.0);
      EXPECT_DOUBLE_EQ(victim.attack_cost, 1.0);
    }
  }
}

TEST(CreditGameTest, CompilesToFewGroups) {
  const auto instance = MakeCreditGame();
  ASSERT_TRUE(instance.ok());
  const auto compiled = core::Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  // Applicants fall into a handful of attribute classes -> few groups.
  EXPECT_LE(compiled->groups.size(), 8u);
  double weight = 0.0;
  for (const auto& group : compiled->groups) weight += group.weight;
  EXPECT_NEAR(weight, 100.0, 1e-9);
}

TEST(CreditGameTest, RejectsBadConfig) {
  CreditConfig config;
  config.num_applicants = 0;
  EXPECT_FALSE(MakeCreditGame(config).ok());
  config = CreditConfig();
  config.p_no_checking = 0.8;
  config.p_checking_negative = 0.5;
  EXPECT_FALSE(MakeCreditGame(config).ok());
  config = CreditConfig();
  config.type_benefits = {1.0};
  EXPECT_FALSE(MakeCreditGame(config).ok());
}

}  // namespace
}  // namespace auditgame::data
