#include "util/arena.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace auditgame::util {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(/*first_block_bytes=*/64);
  double* a = arena.AllocateArray<double>(5);
  double* b = arena.AllocateArray<double>(3);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % alignof(double), 0u);
  // Ranges must not overlap.
  EXPECT_TRUE(b >= a + 5 || a >= b + 3);
  for (int i = 0; i < 5; ++i) a[i] = i;
  for (int i = 0; i < 3; ++i) b[i] = 100 + i;
  for (int i = 0; i < 5; ++i) EXPECT_EQ(a[i], i);
}

TEST(ArenaTest, GrowsBeyondFirstBlockAndCountsHeapBlocks) {
  Arena arena(/*first_block_bytes=*/128);
  for (int i = 0; i < 50; ++i) {
    double* p = arena.AllocateArray<double>(32);  // 256 bytes each
    ASSERT_NE(p, nullptr);
    p[0] = i;
  }
  EXPECT_EQ(arena.stats().requests, 50u);
  EXPECT_GE(arena.stats().heap_blocks, 1u);
  // Geometric growth keeps the block count logarithmic in total bytes.
  EXPECT_LE(arena.stats().heap_blocks, 12u);
}

TEST(ArenaTest, ResetReusesCapacityWithoutNewHeapBlocks) {
  Arena arena(/*first_block_bytes=*/1024);
  for (int round = 0; round < 100; ++round) {
    arena.Reset();
    double* p = arena.AllocateArray<double>(200);
    int* q = arena.AllocateArray<int>(100);
    p[199] = round;
    q[99] = round;
  }
  const Arena::Stats& stats = arena.stats();
  EXPECT_EQ(stats.requests, 200u);
  // After the first round's warm-up, every later round is heap-free: the
  // steady-state property the benches gate on.
  EXPECT_LE(stats.heap_blocks, 4u);
}

TEST(ArenaTest, ScopeRewindsNestedLifo) {
  Arena arena(/*first_block_bytes=*/256);
  double* outer = arena.AllocateArray<double>(8);
  outer[0] = 1.0;
  const uint64_t blocks_before = arena.stats().heap_blocks;
  double* first_inner = nullptr;
  {
    ArenaScope scope(arena);
    first_inner = arena.AllocateArray<double>(16);
    first_inner[0] = 2.0;
    {
      ArenaScope nested(arena);
      double* deep = arena.AllocateArray<double>(4);
      deep[0] = 3.0;
    }
  }
  // The same storage is handed out again after the scope rewound.
  double* second_inner = arena.AllocateArray<double>(16);
  EXPECT_EQ(second_inner, first_inner);
  EXPECT_EQ(arena.stats().heap_blocks, blocks_before);
  EXPECT_EQ(outer[0], 1.0);
}

TEST(ArenaVectorTest, BehavesLikeAVectorForTrivialTypes) {
  Arena arena;
  ArenaVector<double> v(arena);
  for (int i = 0; i < 100; ++i) v.push_back(i * 0.5);
  ASSERT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[i], i * 0.5);

  v.assign(10, 7.0);
  ASSERT_EQ(v.size(), 10u);
  EXPECT_EQ(v.back(), 7.0);

  std::vector<double> src = {1.0, 2.0, 3.0};
  v.assign(src.data(), src.data() + src.size());
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 3.0);

  v.resize(5, -1.0);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[2], 3.0);
  EXPECT_EQ(v[4], -1.0);

  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(ArenaVectorTest, ReserveAvoidsGrowthCopies) {
  Arena arena;
  ArenaVector<int> v(arena);
  v.reserve(1000);
  const uint64_t requests_after_reserve = arena.stats().requests;
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(arena.stats().requests, requests_after_reserve);
  EXPECT_EQ(v[999], 999);
}

TEST(WorkspacePoolTest, SlotsAreStableAndResettable) {
  WorkspacePool pool(/*first_block_bytes=*/512);
  pool.Prepare(4);
  EXPECT_EQ(pool.num_slots(), 4u);
  Arena* slot2 = &pool.Get(2);
  double* p = slot2->AllocateArray<double>(10);
  p[0] = 42.0;
  pool.Prepare(8);  // Growing must not move existing slots.
  EXPECT_EQ(&pool.Get(2), slot2);
  EXPECT_EQ(p[0], 42.0);

  pool.ResetAll();
  double* q = pool.Get(2).AllocateArray<double>(10);
  EXPECT_EQ(q, p);

  Arena::Stats total = pool.TotalStats();
  EXPECT_EQ(total.requests, 2u);
  pool.ResetStats();
  EXPECT_EQ(pool.TotalStats().requests, 0u);
}

}  // namespace
}  // namespace auditgame::util
