// Tests for the length-prefixed frame codec (net/frame.h): arbitrary
// fragmentation must reassemble byte-identically, and the payload cap must
// reject oversized frames with a sticky error (the connection-fatal case).
#include "net/frame.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace auditgame::net {
namespace {

TEST(FrameCodecTest, EncodeWritesBigEndianHeader) {
  const std::string frame = EncodeFrame("abc");
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 3);
  EXPECT_EQ(static_cast<unsigned char>(frame[0]), 0);
  EXPECT_EQ(static_cast<unsigned char>(frame[1]), 0);
  EXPECT_EQ(static_cast<unsigned char>(frame[2]), 0);
  EXPECT_EQ(static_cast<unsigned char>(frame[3]), 3);
  EXPECT_EQ(frame.substr(4), "abc");
}

TEST(FrameCodecTest, RoundTripSingleFrame) {
  FrameDecoder decoder;
  decoder.Append(EncodeFrame(R"({"verb":"stats","id":1})"));
  std::string payload;
  auto next = decoder.Next(&payload);
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(*next);
  EXPECT_EQ(payload, R"({"verb":"stats","id":1})");
  next = decoder.Next(&payload);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(*next);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameCodecTest, MultipleFramesInOneChunk) {
  FrameDecoder decoder;
  decoder.Append(EncodeFrame("one") + EncodeFrame("") + EncodeFrame("three"));
  std::string payload;
  auto next = decoder.Next(&payload);
  ASSERT_TRUE(next.ok() && *next);
  EXPECT_EQ(payload, "one");
  next = decoder.Next(&payload);
  ASSERT_TRUE(next.ok() && *next);
  EXPECT_EQ(payload, "");  // zero-length payloads are legal frames
  next = decoder.Next(&payload);
  ASSERT_TRUE(next.ok() && *next);
  EXPECT_EQ(payload, "three");
  next = decoder.Next(&payload);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(*next);
}

TEST(FrameCodecTest, ByteAtATimeReassembles) {
  const std::vector<std::string> payloads = {"a", "", "hello world",
                                             std::string(1000, 'x')};
  std::string wire;
  for (const std::string& p : payloads) wire += EncodeFrame(p);

  FrameDecoder decoder;
  std::vector<std::string> decoded;
  for (char byte : wire) {
    decoder.Append(&byte, 1);
    for (;;) {
      std::string payload;
      auto next = decoder.Next(&payload);
      ASSERT_TRUE(next.ok());
      if (!*next) break;
      decoded.push_back(std::move(payload));
    }
  }
  EXPECT_EQ(decoded, payloads);
}

TEST(FrameCodecTest, PartialHeaderIsNotAFrame) {
  FrameDecoder decoder;
  const std::string frame = EncodeFrame("payload");
  decoder.Append(frame.substr(0, 2));  // half the header
  std::string payload;
  auto next = decoder.Next(&payload);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(*next);
  decoder.Append(frame.substr(2));
  next = decoder.Next(&payload);
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(*next);
  EXPECT_EQ(payload, "payload");
}

TEST(FrameCodecTest, OversizedFrameIsStickyError) {
  FrameDecoder decoder(/*max_payload=*/8);
  decoder.Append(EncodeFrame("exactly8"));  // at the cap: fine
  std::string payload;
  auto next = decoder.Next(&payload);
  ASSERT_TRUE(next.ok() && *next);
  EXPECT_EQ(payload, "exactly8");

  decoder.Append(EncodeFrame("ninebytes"));  // over the cap
  next = decoder.Next(&payload);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), util::StatusCode::kResourceExhausted);
  // Poisoned: the stream cannot be resynchronized past a bad length word.
  next = decoder.Next(&payload);
  ASSERT_FALSE(next.ok());
}

TEST(FrameCodecTest, OversizedHeaderAloneTrips) {
  // The cap must trip on the announced length, before any payload bytes
  // arrive — a 4-byte header claiming 1 GiB must not reserve memory.
  FrameDecoder decoder(/*max_payload=*/1024);
  const char header[4] = {0x40, 0x00, 0x00, 0x00};  // 1 GiB
  decoder.Append(header, sizeof(header));
  std::string payload;
  auto next = decoder.Next(&payload);
  ASSERT_FALSE(next.ok());
}

TEST(FrameCodecTest, LongStreamCompactsBuffer) {
  // Many frames through one decoder: buffered() returns to zero between
  // frames, so the internal buffer cannot grow with stream length.
  FrameDecoder decoder;
  for (int i = 0; i < 10000; ++i) {
    decoder.Append(EncodeFrame("frame-" + std::to_string(i)));
    std::string payload;
    auto next = decoder.Next(&payload);
    ASSERT_TRUE(next.ok() && *next);
    ASSERT_EQ(payload, "frame-" + std::to_string(i));
    ASSERT_EQ(decoder.buffered(), 0u);
  }
}

}  // namespace
}  // namespace auditgame::net
