#!/usr/bin/env python3
"""Self-test for tools/bench_compare.py — the script that gates every
BENCH report in CI deserves its own gate.

Runs the real script as a subprocess against temp-file report pairs and
checks the exit code (and, where the message matters, stderr/stdout
content). Plain unittest, no external deps, wired into ctest next to the
C++ suites.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "tools",
    "bench_compare.py")


def run_compare(baseline, current, *extra_args):
    """Writes both reports to temp files and runs bench_compare on them."""
    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "baseline.json")
        cur_path = os.path.join(tmp, "current.json")
        with open(base_path, "w", encoding="utf-8") as f:
            json.dump(baseline, f)
        with open(cur_path, "w", encoding="utf-8") as f:
            json.dump(current, f)
        return subprocess.run(
            [sys.executable, SCRIPT, base_path, cur_path, *extra_args],
            capture_output=True, text=True, check=False)


class BenchCompareTest(unittest.TestCase):
    def test_identical_reports_pass(self):
        report = {"bench": "x", "answered_ratio": 1.0, "order_preserved": True}
        result = run_compare(report, report)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_boolean_flip_fails(self):
        result = run_compare({"order_preserved": True},
                             {"order_preserved": False})
        self.assertEqual(result.returncode, 1)
        self.assertIn("flipped", result.stdout)

    def test_ratio_regression_fails(self):
        result = run_compare({"answered_ratio": 1.0},
                             {"answered_ratio": 0.5})
        self.assertEqual(result.returncode, 1)

    def test_ratio_within_threshold_passes(self):
        result = run_compare({"warm_hit_ratio": 1.0},
                             {"warm_hit_ratio": 0.9})
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_timing_skipped_without_gate_timing(self):
        result = run_compare({"wall_seconds": 0.1}, {"wall_seconds": 10.0})
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_missing_baseline_key_fails(self):
        result = run_compare({"answered_ratio": 1.0}, {})
        self.assertEqual(result.returncode, 1)
        self.assertIn("missing from current", result.stdout)

    def test_extra_current_key_ignored_without_require(self):
        # The asymmetry --require exists to close: keys absent from the
        # baseline are invisible to the walk.
        result = run_compare({}, {"warm_hit_after_failover": False})
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_require_present_in_both_passes(self):
        report = {"warm_hit_after_failover": True}
        result = run_compare(report, report,
                             "--require", "warm_hit_after_failover")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_require_missing_from_current_fails(self):
        result = run_compare({"warm_hit_after_failover": True}, {},
                             "--require", "warm_hit_after_failover")
        self.assertEqual(result.returncode, 1)
        self.assertIn("missing from current", result.stdout)

    def test_require_missing_from_baseline_fails(self):
        result = run_compare({}, {"warm_hit_after_failover": True},
                             "--require", "warm_hit_after_failover")
        self.assertEqual(result.returncode, 1)
        self.assertIn("missing from baseline", result.stdout)

    def test_require_dotted_path(self):
        report = {"router": {"failovers": 1}}
        ok = run_compare(report, report, "--require", "router.failovers")
        self.assertEqual(ok.returncode, 0, ok.stdout + ok.stderr)
        missing = run_compare(report, {"router": {}},
                              "--require", "router.failovers")
        self.assertEqual(missing.returncode, 1)

    def test_unreadable_report_exits_2(self):
        result = subprocess.run(
            [sys.executable, SCRIPT, "/nonexistent/a.json",
             "/nonexistent/b.json"],
            capture_output=True, text=True, check=False)
        self.assertEqual(result.returncode, 2)


if __name__ == "__main__":
    unittest.main()
