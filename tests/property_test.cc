// Randomized property tests cutting across modules: for arbitrary small
// game instances, independent code paths must agree and the paper's
// structural invariants must hold.
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "audit/executor.h"
#include "core/cggs.h"
#include "core/detection.h"
#include "core/game_io.h"
#include "core/game_lp.h"
#include "core/policy.h"
#include "prob/count_distribution.h"
#include "util/random.h"

namespace auditgame {
namespace {

// Builds a random but well-formed game with 2-4 types and 1-4 adversaries.
core::GameInstance RandomGame(util::Rng& rng) {
  core::GameInstance instance;
  const int t_count = 2 + static_cast<int>(rng.UniformInt(3));
  for (int t = 0; t < t_count; ++t) {
    instance.type_names.push_back("t" + std::to_string(t));
    instance.audit_costs.push_back(1.0 + static_cast<double>(rng.UniformInt(2)));
    const int mean = 2 + static_cast<int>(rng.UniformInt(5));
    instance.alert_distributions.push_back(
        *prob::CountDistribution::DiscretizedGaussian(
            mean, 0.8 + rng.Uniform(), std::max(0, mean - 3), mean + 3));
  }
  const int adversary_count = 1 + static_cast<int>(rng.UniformInt(4));
  for (int e = 0; e < adversary_count; ++e) {
    core::Adversary adversary;
    adversary.attack_probability = 0.25 + 0.75 * rng.Uniform();
    adversary.can_opt_out = rng.Uniform() < 0.5;
    const int victim_count = 1 + static_cast<int>(rng.UniformInt(4));
    for (int v = 0; v < victim_count; ++v) {
      core::VictimProfile victim;
      victim.type_probs.assign(static_cast<size_t>(t_count), 0.0);
      // Possibly stochastic mapping: split mass between one or two types.
      const int primary = static_cast<int>(rng.UniformInt(
          static_cast<uint64_t>(t_count)));
      if (rng.Uniform() < 0.3 && t_count > 1) {
        const int secondary = (primary + 1) % t_count;
        const double p = 0.3 + 0.4 * rng.Uniform();
        victim.type_probs[static_cast<size_t>(primary)] = p;
        victim.type_probs[static_cast<size_t>(secondary)] = 0.9 - p;
      } else {
        victim.type_probs[static_cast<size_t>(primary)] = 1.0;
      }
      victim.benefit = rng.Uniform(1.0, 8.0);
      victim.penalty = rng.Uniform(0.0, 6.0);
      victim.attack_cost = rng.Uniform(0.0, 1.0);
      adversary.victims.push_back(std::move(victim));
    }
    instance.adversaries.push_back(std::move(adversary));
  }
  return instance;
}

std::vector<double> RandomThresholds(const core::GameInstance& instance,
                                     util::Rng& rng) {
  std::vector<double> thresholds;
  for (int t = 0; t < instance.num_types(); ++t) {
    const int max_audits = instance.alert_distributions[t].max_value();
    thresholds.push_back(instance.audit_costs[t] *
                         static_cast<double>(rng.UniformInt(
                             static_cast<uint64_t>(max_audits) + 1)));
  }
  return thresholds;
}

class RandomGameTest : public ::testing::TestWithParam<int> {
 protected:
  util::Rng rng_{static_cast<uint64_t>(GetParam()) * 104729 + 17};
};

// The LP objective must equal the independently computed best-response
// evaluation of the policy the LP itself produced.
TEST_P(RandomGameTest, LpObjectiveMatchesPolicyEvaluation) {
  const core::GameInstance instance = RandomGame(rng_);
  const auto compiled = core::Compile(instance);
  ASSERT_TRUE(compiled.ok());
  const double budget = 1.0 + static_cast<double>(rng_.UniformInt(10));
  auto detection = core::DetectionModel::Create(instance, budget);
  ASSERT_TRUE(detection.ok());
  const auto thresholds = RandomThresholds(instance, rng_);
  const auto full = core::SolveFullGameLp(*compiled, *detection, thresholds);
  ASSERT_TRUE(full.ok());
  const auto eval = core::EvaluatePolicy(*compiled, *detection, full->policy);
  ASSERT_TRUE(eval.ok());
  EXPECT_NEAR(eval->auditor_loss, full->objective, 1e-6);
}

// CGGS is a restriction of the full LP: it can never do better, and with
// its greedy pricing it should stay within a modest gap.
TEST_P(RandomGameTest, CggsBoundedByFullLp) {
  const core::GameInstance instance = RandomGame(rng_);
  const auto compiled = core::Compile(instance);
  ASSERT_TRUE(compiled.ok());
  const double budget = 1.0 + static_cast<double>(rng_.UniformInt(10));
  auto detection = core::DetectionModel::Create(instance, budget);
  ASSERT_TRUE(detection.ok());
  const auto thresholds = RandomThresholds(instance, rng_);
  const auto full = core::SolveFullGameLp(*compiled, *detection, thresholds);
  const auto cggs = core::SolveCggs(*compiled, *detection, thresholds);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(cggs.ok());
  EXPECT_GE(cggs->objective, full->objective - 1e-7);
  // The greedy pricing is a heuristic (exact pricing is hard), so gaps can
  // occur; this generous bound only guards against catastrophic
  // regressions of the column generation.
  EXPECT_LE(cggs->objective - full->objective,
            2.0 + 0.25 * std::fabs(full->objective));
}

// Raising the budget (same thresholds, same mixture) can only help the
// auditor: every Pal weakly increases, so the best-response loss weakly
// decreases.
TEST_P(RandomGameTest, LossMonotoneInBudgetForFixedPolicy) {
  const core::GameInstance instance = RandomGame(rng_);
  const auto compiled = core::Compile(instance);
  ASSERT_TRUE(compiled.ok());
  const auto thresholds = RandomThresholds(instance, rng_);

  core::AuditPolicy policy;
  policy.thresholds = thresholds;
  std::vector<int> ordering(static_cast<size_t>(instance.num_types()));
  std::iota(ordering.begin(), ordering.end(), 0);
  policy.orderings = {ordering};
  std::reverse(ordering.begin(), ordering.end());
  policy.orderings.push_back(ordering);
  policy.probabilities = {0.5, 0.5};

  double previous = 1e18;
  for (double budget : {1.0, 3.0, 6.0, 12.0}) {
    policy.budget = budget;
    auto detection = core::DetectionModel::Create(instance, budget);
    ASSERT_TRUE(detection.ok());
    const auto eval = core::EvaluatePolicy(*compiled, *detection, policy);
    ASSERT_TRUE(eval.ok());
    EXPECT_LE(eval->auditor_loss, previous + 1e-9) << "budget " << budget;
    previous = eval->auditor_loss;
  }
}

// Executor invariants on random realizations: per-type caps and the global
// budget are always respected, for any ordering.
TEST_P(RandomGameTest, ExecutorRespectsAllCaps) {
  const core::GameInstance instance = RandomGame(rng_);
  const auto thresholds = RandomThresholds(instance, rng_);
  audit::AuditConfiguration config;
  config.thresholds = thresholds;
  config.audit_costs = instance.audit_costs;
  config.budget = 1.0 + static_cast<double>(rng_.UniformInt(12));
  config.ordering.resize(static_cast<size_t>(instance.num_types()));
  std::iota(config.ordering.begin(), config.ordering.end(), 0);
  rng_.Shuffle(config.ordering);

  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<int> counts =
        prob::SampleJoint(instance.alert_distributions, rng_);
    const auto audited = audit::AuditedCounts(config, counts);
    ASSERT_TRUE(audited.ok());
    double spent = 0.0;
    for (int t = 0; t < instance.num_types(); ++t) {
      EXPECT_GE((*audited)[t], 0);
      EXPECT_LE((*audited)[t], counts[static_cast<size_t>(t)]);
      EXPECT_LE((*audited)[t],
                static_cast<int>(std::floor(
                    thresholds[static_cast<size_t>(t)] /
                    instance.audit_costs[static_cast<size_t>(t)])));
      spent += (*audited)[t] * instance.audit_costs[static_cast<size_t>(t)];
    }
    EXPECT_LE(spent, config.budget + 1e-9);
  }
}

// Detection probabilities computed analytically must agree with the Monte
// Carlo estimator on the same game (common distributions).
TEST_P(RandomGameTest, ExactAndMonteCarloAgree) {
  const core::GameInstance instance = RandomGame(rng_);
  const double budget = 2.0 + static_cast<double>(rng_.UniformInt(8));
  const auto thresholds = RandomThresholds(instance, rng_);
  std::vector<int> ordering(static_cast<size_t>(instance.num_types()));
  std::iota(ordering.begin(), ordering.end(), 0);
  rng_.Shuffle(ordering);

  auto exact = core::DetectionModel::Create(instance, budget);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(exact->SetThresholds(thresholds).ok());
  core::DetectionModel::Options mc_options;
  mc_options.mode = core::DetectionModel::Mode::kMonteCarlo;
  mc_options.mc_samples = 60000;
  mc_options.seed = rng_();
  auto mc = core::DetectionModel::Create(instance, budget, mc_options);
  ASSERT_TRUE(mc.ok());
  ASSERT_TRUE(mc->SetThresholds(thresholds).ok());

  const auto pal_exact = exact->DetectionProbabilities(ordering);
  const auto pal_mc = mc->DetectionProbabilities(ordering);
  ASSERT_TRUE(pal_exact.ok());
  ASSERT_TRUE(pal_mc.ok());
  for (int t = 0; t < instance.num_types(); ++t) {
    EXPECT_NEAR((*pal_mc)[t], (*pal_exact)[t], 0.015) << "type " << t;
  }
}

// JSON round trip preserves the game up to solver equivalence.
TEST_P(RandomGameTest, JsonRoundTripPreservesLpObjective) {
  const core::GameInstance instance = RandomGame(rng_);
  const auto reparsed = core::ParseGame(core::SerializeGame(instance));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  const double budget = 1.0 + static_cast<double>(rng_.UniformInt(8));
  const auto thresholds = RandomThresholds(instance, rng_);

  const auto compiled_a = core::Compile(instance);
  const auto compiled_b = core::Compile(*reparsed);
  ASSERT_TRUE(compiled_a.ok());
  ASSERT_TRUE(compiled_b.ok());
  auto detection_a = core::DetectionModel::Create(instance, budget);
  auto detection_b = core::DetectionModel::Create(*reparsed, budget);
  ASSERT_TRUE(detection_a.ok());
  ASSERT_TRUE(detection_b.ok());
  const auto full_a = core::SolveFullGameLp(*compiled_a, *detection_a, thresholds);
  const auto full_b = core::SolveFullGameLp(*compiled_b, *detection_b, thresholds);
  ASSERT_TRUE(full_a.ok());
  ASSERT_TRUE(full_b.ok());
  EXPECT_NEAR(full_a->objective, full_b->objective, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGameTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace auditgame
