#include "util/status.h"

#include <gtest/gtest.h>

#include "util/statusor.h"

namespace auditgame::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgumentError("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, OkStatusDropsMessage) {
  Status status(StatusCode::kOk, "ignored");
  EXPECT_TRUE(status.ok());
  EXPECT_TRUE(status.message().empty());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("x"), InvalidArgumentError("x"));
  EXPECT_FALSE(InvalidArgumentError("x") == InvalidArgumentError("y"));
  EXPECT_FALSE(InvalidArgumentError("x") == NotFoundError("x"));
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(NotFoundError("m").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("m").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("m").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(InternalError("m").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("m").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(ResourceExhaustedError("m").code(),
            StatusCode::kResourceExhausted);
}

Status FailsIfNegative(int x) {
  RETURN_IF_ERROR(x < 0 ? InvalidArgumentError("negative") : OkStatus());
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(FailsIfNegative(1).ok());
  EXPECT_FALSE(FailsIfNegative(-1).ok());
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return InvalidArgumentError("not positive");
  return x;
}

StatusOr<int> DoublePositive(int x) {
  ASSIGN_OR_RETURN(int value, ParsePositive(x));
  return value * 2;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = ParsePositive(21);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 21);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = ParsePositive(-3);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*DoublePositive(4), 8);
  EXPECT_FALSE(DoublePositive(0).ok());
}

TEST(StatusOrTest, MoveOnlyValueWorks) {
  StatusOr<std::unique_ptr<int>> result(std::make_unique<int>(5));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 5);
}

TEST(StatusOrTest, ConstructingFromOkStatusBecomesInternalError) {
  StatusOr<int> result{OkStatus()};
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace auditgame::util
