#include "core/extensions.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/cggs.h"
#include "core/game_lp.h"
#include "tests/test_util.h"

namespace auditgame::core {
namespace {

using testutil::MakeTinyGame;

AuditPolicy MixedPolicy() {
  AuditPolicy policy;
  policy.budget = 3.0;
  policy.thresholds = {2.0, 2.0};
  policy.orderings = {{0, 1}, {1, 0}};
  policy.probabilities = {0.5, 0.5};
  return policy;
}

TEST(QuantalResponseTest, RejectsBadLambda) {
  const GameInstance instance = MakeTinyGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  EXPECT_FALSE(EvaluateQuantalResponse(*compiled, *detection, MixedPolicy(),
                                       -1.0)
                   .ok());
}

TEST(QuantalResponseTest, LambdaZeroIsUniform) {
  // With Pal = [0.75, 0.75] the utilities are v0: -1.5, v1: -1.0, opt
  // out: 0. Uniform mixing over the three options gives loss -2.5/3.
  const GameInstance instance = MakeTinyGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  const auto eval =
      EvaluateQuantalResponse(*compiled, *detection, MixedPolicy(), 0.0);
  ASSERT_TRUE(eval.ok());
  EXPECT_NEAR(eval->auditor_loss, -2.5 / 3, 1e-9);
  EXPECT_NEAR(eval->opt_out_probability[0], 1.0 / 3, 1e-9);
}

TEST(QuantalResponseTest, LargeLambdaRecoversBestResponse) {
  const GameInstance instance = MakeTinyGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  const auto qr =
      EvaluateQuantalResponse(*compiled, *detection, MixedPolicy(), 100.0);
  const auto best = EvaluatePolicy(*compiled, *detection, MixedPolicy());
  ASSERT_TRUE(qr.ok());
  ASSERT_TRUE(best.ok());
  EXPECT_NEAR(qr->auditor_loss, best->auditor_loss, 1e-6);
  // Best response is opt-out here.
  EXPECT_NEAR(qr->opt_out_probability[0], 1.0, 1e-6);
}

TEST(QuantalResponseTest, MonotoneInLambdaTowardBestResponse) {
  const GameInstance instance = MakeTinyGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  double previous = -1e18;
  for (double lambda : {0.0, 0.5, 1.0, 2.0, 8.0}) {
    const auto eval = EvaluateQuantalResponse(*compiled, *detection,
                                              MixedPolicy(), lambda);
    ASSERT_TRUE(eval.ok());
    // Sharper adversaries extract weakly more utility.
    EXPECT_GE(eval->auditor_loss, previous - 1e-9);
    previous = eval->auditor_loss;
  }
}

TEST(NonZeroSumTest, DeterredAdversaryCostsNothing) {
  const GameInstance instance = MakeTinyGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  const auto eval = EvaluateNonZeroSum(*compiled, *detection, MixedPolicy());
  ASSERT_TRUE(eval.ok());
  // Under the mixed policy the adversary opts out: both losses are 0.
  EXPECT_NEAR(eval->zero_sum_loss, 0.0, 1e-9);
  EXPECT_NEAR(eval->auditor_loss, 0.0, 1e-9);
}

TEST(NonZeroSumTest, SuccessfulViolationLossExceedsZeroSum) {
  // Without opt-out the adversary attacks; the zero-sum loss nets out the
  // adversary's own costs, while the auditor's true loss (1 - Pat) * R is
  // larger.
  const GameInstance instance = MakeTinyGame(/*can_opt_out=*/false);
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  const auto eval = EvaluateNonZeroSum(*compiled, *detection, MixedPolicy());
  ASSERT_TRUE(eval.ok());
  // Best response is v1 (utility -1.0); (1 - 0.75) * 6 = 1.5.
  EXPECT_NEAR(eval->zero_sum_loss, -1.0, 1e-9);
  EXPECT_NEAR(eval->auditor_loss, 1.5, 1e-9);
  EXPECT_GT(eval->auditor_loss, eval->zero_sum_loss);
}

TEST(ScaleUtilitiesTest, MultipliersApply) {
  const GameInstance instance = MakeTinyGame();
  const GameInstance scaled = ScaleUtilities(instance, 2.0, 0.5, 3.0);
  const VictimProfile& original = instance.adversaries[0].victims[0];
  const VictimProfile& modified = scaled.adversaries[0].victims[0];
  EXPECT_DOUBLE_EQ(modified.benefit, 2.0 * original.benefit);
  EXPECT_DOUBLE_EQ(modified.penalty, 0.5 * original.penalty);
  EXPECT_DOUBLE_EQ(modified.attack_cost, 3.0 * original.attack_cost);
  EXPECT_TRUE(scaled.Validate().ok());
}

TEST(ScaleUtilitiesTest, HigherPenaltyWeaklyLowersOptimalLoss) {
  const GameInstance base = MakeTinyGame(/*can_opt_out=*/false);
  const auto compiled_base = Compile(base);
  ASSERT_TRUE(compiled_base.ok());
  auto detection_base = DetectionModel::Create(base, 3.0);
  ASSERT_TRUE(detection_base.ok());
  const auto loss_base =
      SolveFullGameLp(*compiled_base, *detection_base, {2.0, 2.0});
  ASSERT_TRUE(loss_base.ok());

  const GameInstance harsh = ScaleUtilities(base, 1.0, 4.0, 1.0);
  const auto compiled_harsh = Compile(harsh);
  ASSERT_TRUE(compiled_harsh.ok());
  auto detection_harsh = DetectionModel::Create(harsh, 3.0);
  ASSERT_TRUE(detection_harsh.ok());
  const auto loss_harsh =
      SolveFullGameLp(*compiled_harsh, *detection_harsh, {2.0, 2.0});
  ASSERT_TRUE(loss_harsh.ok());
  EXPECT_LE(loss_harsh->objective, loss_base->objective + 1e-9);
}

}  // namespace
}  // namespace auditgame::core
