#include "util/thread_pool.h"

#include <atomic>
#include <future>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace auditgame::util {
namespace {

TEST(ThreadPoolTest, ReportsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  ThreadPool default_pool(0);
  EXPECT_EQ(default_pool.num_threads(), ThreadPool::DefaultThreadCount());
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
}

TEST(ThreadPoolTest, CompletesAllScheduledTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  const int tasks = 200;
  for (int i = 0; i < tasks; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), tasks);
}

TEST(ThreadPoolTest, WaitCanBeCalledRepeatedly) {
  ThreadPool pool(2);
  pool.Wait();  // nothing scheduled yet
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, SubmitReturnsTaskValue) {
  ThreadPool pool(2);
  std::future<int> value = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(value.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  std::future<int> failing = pool.Submit(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(failing.get(), std::runtime_error);
  // The worker that ran the throwing task must still be alive.
  std::future<int> ok = pool.Submit([] { return 1; });
  EXPECT_EQ(ok.get(), 1);
}

TEST(ThreadPoolTest, ParallelResultsMatchSerial) {
  const int n = 64;
  std::vector<long> serial(n);
  for (int i = 0; i < n; ++i) {
    serial[static_cast<size_t>(i)] = static_cast<long>(i) * i - 3 * i;
  }

  ThreadPool pool(4);
  std::vector<long> parallel(n, 0);
  for (int i = 0; i < n; ++i) {
    // Preassigned slots: completion order cannot change the output.
    pool.Schedule([&parallel, i] {
      parallel[static_cast<size_t>(i)] = static_cast<long>(i) * i - 3 * i;
    });
  }
  pool.Wait();
  EXPECT_EQ(parallel, serial);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins after the queue is drained
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace auditgame::util
