#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace auditgame::util {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 12);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.Uniform();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntRespectsRange) {
  Rng rng(13);
  std::vector<int> histogram(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const uint64_t v = rng.UniformInt(7);
    ASSERT_LT(v, 7u);
    ++histogram[static_cast<size_t>(v)];
  }
  for (int count : histogram) EXPECT_NEAR(count, 10000, 500);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  const int n = 200000;
  double total = 0.0, total_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    total += g;
    total_sq += g * g;
  }
  const double mean = total / n;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(total_sq / n - mean * mean, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(23);
  const int n = 100000;
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(total / n, 10.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(20);
  std::iota(v.begin(), v.end(), 0);
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(RngTest, ShuffleCoversPermutations) {
  // With 3 elements, all 6 permutations should occur over many shuffles.
  Rng rng(31);
  std::set<std::vector<int>> seen;
  for (int i = 0; i < 500; ++i) {
    std::vector<int> v = {0, 1, 2};
    rng.Shuffle(v);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(37);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> histogram(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++histogram[rng.Categorical(weights)];
  EXPECT_NEAR(histogram[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(histogram[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_EQ(histogram[2], 0);
  EXPECT_NEAR(histogram[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalIgnoresNegativeWeights) {
  Rng rng(41);
  const std::vector<double> weights = {-5.0, 1.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Categorical(weights), 1u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.Fork();
  // The child stream should not track the parent.
  int equal = 0;
  for (int i = 0; i < 16; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

}  // namespace
}  // namespace auditgame::util
