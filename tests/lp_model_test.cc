#include "lp/model.h"

#include <gtest/gtest.h>

namespace auditgame::lp {
namespace {

TEST(LpModelTest, VariableAccessors) {
  LpModel model;
  const int x = model.AddVariable(2.5, -1.0, 4.0, "x");
  EXPECT_EQ(model.num_variables(), 1);
  EXPECT_DOUBLE_EQ(model.cost(x), 2.5);
  EXPECT_DOUBLE_EQ(model.lower_bound(x), -1.0);
  EXPECT_DOUBLE_EQ(model.upper_bound(x), 4.0);
  EXPECT_EQ(model.variable_name(x), "x");
}

TEST(LpModelTest, DefaultNamesAreGenerated) {
  LpModel model;
  model.AddNonNegativeVariable(0.0);
  model.AddFreeVariable(1.0);
  EXPECT_EQ(model.variable_name(0), "x0");
  EXPECT_EQ(model.variable_name(1), "x1");
  model.AddConstraint(Sense::kEqual, 1.0);
  EXPECT_EQ(model.constraint_name(0), "c0");
}

TEST(LpModelTest, CoefficientsAccumulate) {
  LpModel model;
  const int x = model.AddNonNegativeVariable(1.0);
  const int row = model.AddConstraint(Sense::kLessEqual, 5.0);
  model.AddCoefficient(row, x, 2.0);
  model.AddCoefficient(row, x, 3.0);
  ASSERT_EQ(model.row_vars(row).size(), 1u);
  EXPECT_DOUBLE_EQ(model.row_coeffs(row)[0], 5.0);
}

TEST(LpModelTest, RowActivityAndObjective) {
  LpModel model;
  const int x = model.AddVariable(1.0, 0.0, kInfinity);
  const int y = model.AddVariable(-2.0, 0.0, kInfinity);
  const int row = model.AddConstraint(Sense::kLessEqual, 10.0);
  model.AddCoefficient(row, x, 3.0);
  model.AddCoefficient(row, y, 1.0);
  model.AddObjectiveConstant(7.0);
  const std::vector<double> point = {2.0, 4.0};
  EXPECT_DOUBLE_EQ(model.RowActivity(row, point), 10.0);
  EXPECT_DOUBLE_EQ(model.Objective(point), 7.0 + 2.0 - 8.0);
}

TEST(LpModelTest, ValidateAcceptsWellFormed) {
  LpModel model;
  const int x = model.AddNonNegativeVariable(1.0);
  const int row = model.AddConstraint(Sense::kGreaterEqual, 1.0);
  model.AddCoefficient(row, x, 1.0);
  EXPECT_TRUE(model.Validate().ok());
}

TEST(LpModelTest, ValidateRejectsInvertedBounds) {
  LpModel model;
  model.AddVariable(0.0, 2.0, 1.0);
  EXPECT_FALSE(model.Validate().ok());
}

TEST(LpModelTest, ValidateRejectsNonFiniteRhs) {
  LpModel model;
  model.AddNonNegativeVariable(1.0);
  model.AddConstraint(Sense::kLessEqual, kInfinity);
  EXPECT_FALSE(model.Validate().ok());
}

TEST(LpModelTest, ValidateRejectsNonFiniteCoefficient) {
  LpModel model;
  const int x = model.AddNonNegativeVariable(1.0);
  const int row = model.AddConstraint(Sense::kLessEqual, 1.0);
  model.AddCoefficient(row, x, kInfinity);
  EXPECT_FALSE(model.Validate().ok());
}

}  // namespace
}  // namespace auditgame::lp
