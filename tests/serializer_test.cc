#include "util/serializer.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace auditgame::util {
namespace {

TEST(Crc32Test, MatchesIeeeCheckVector) {
  // The canonical CRC-32 check value: crc32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(Crc32Test, UpdateChainsIncrementally) {
  const std::string text = "the quick brown fox";
  uint32_t chained = Crc32(text.substr(0, 7));
  chained = Crc32Update(chained, text.substr(7));
  EXPECT_EQ(chained, Crc32(text));
}

TEST(SerializerTest, ScalarRoundTrip) {
  uint8_t u8 = 0xAB;
  uint16_t u16 = 0xBEEF;
  uint32_t u32 = 0xDEADBEEFu;
  uint64_t u64 = 0x0123456789ABCDEFull;
  int i32 = -123456;
  int64_t i64 = -9876543210LL;
  size_t st = 987654321u;
  bool b = true;
  double f = -0.1;

  Serializer w = Serializer::Writer();
  w.U8(u8);
  w.U16(u16);
  w.U32(u32);
  w.U64(u64);
  w.I32(i32);
  w.I64(i64);
  w.SizeT(st);
  w.Bool(b);
  w.F64(f);
  ASSERT_TRUE(w.ok()) << w.status();

  uint8_t ru8 = 0;
  uint16_t ru16 = 0;
  uint32_t ru32 = 0;
  uint64_t ru64 = 0;
  int ri32 = 0;
  int64_t ri64 = 0;
  size_t rst = 0;
  bool rb = false;
  double rf = 0.0;
  Serializer r = Serializer::Reader(w.buffer());
  r.U8(ru8);
  r.U16(ru16);
  r.U32(ru32);
  r.U64(ru64);
  r.I32(ri32);
  r.I64(ri64);
  r.SizeT(rst);
  r.Bool(rb);
  r.F64(rf);
  r.ExpectExhausted();
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(ru8, u8);
  EXPECT_EQ(ru16, u16);
  EXPECT_EQ(ru32, u32);
  EXPECT_EQ(ru64, u64);
  EXPECT_EQ(ri32, i32);
  EXPECT_EQ(ri64, i64);
  EXPECT_EQ(rst, st);
  EXPECT_EQ(rb, b);
  EXPECT_EQ(rf, f);
}

TEST(SerializerTest, DoubleRoundTripsAreBitExact) {
  // The durability contract: doubles survive as raw bit patterns — no
  // formatting, no renormalization. NaN payloads, -0.0, denormals and ULP
  // neighbours must all come back identical.
  std::vector<double> specials = {
      0.0,
      -0.0,
      1.0,
      std::nextafter(1.0, 2.0),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      0.1 + 0.2,  // famously != 0.3
  };
  Serializer w = Serializer::Writer();
  std::vector<double> to_write = specials;
  w.VecF64(to_write);
  ASSERT_TRUE(w.ok());

  std::vector<double> read;
  Serializer r = Serializer::Reader(w.buffer());
  r.VecF64(read);
  r.ExpectExhausted();
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(read.size(), specials.size());
  for (size_t i = 0; i < specials.size(); ++i) {
    uint64_t want = 0, got = 0;
    std::memcpy(&want, &specials[i], 8);
    std::memcpy(&got, &read[i], 8);
    EXPECT_EQ(got, want) << "double #" << i << " drifted";
  }
}

TEST(SerializerTest, StringAndVectorRoundTrip) {
  std::string str = std::string("embedded\0nul", 12);
  std::vector<int> vi = {-1, 0, 7, 1 << 30};
  std::vector<std::string> vs = {"", "a", "bb"};
  std::vector<std::vector<int>> vvi = {{}, {1}, {2, 3}};

  Serializer w = Serializer::Writer();
  w.Str(str);
  w.VecI32(vi);
  w.VecStr(vs);
  w.VecVecI32(vvi);
  ASSERT_TRUE(w.ok());

  std::string rstr;
  std::vector<int> rvi;
  std::vector<std::string> rvs;
  std::vector<std::vector<int>> rvvi;
  Serializer r = Serializer::Reader(w.buffer());
  r.Str(rstr);
  r.VecI32(rvi);
  r.VecStr(rvs);
  r.VecVecI32(rvvi);
  r.ExpectExhausted();
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(rstr, str);
  EXPECT_EQ(rvi, vi);
  EXPECT_EQ(rvs, vs);
  EXPECT_EQ(rvvi, vvi);
}

TEST(SerializerTest, SectionVersionMismatchIsRejected) {
  Serializer w = Serializer::Writer();
  w.Section("thing", 2);
  double payload = 1.5;
  w.F64(payload);

  Serializer r = Serializer::Reader(w.buffer());
  r.Section("thing", 3);  // reader expects a different layout version
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << r.status();

  // Sticky: later reads are no-ops with zeroed outputs.
  double after = 42.0;
  r.F64(after);
  EXPECT_EQ(after, 0.0);
}

TEST(SerializerTest, SectionTagMismatchIsRejected) {
  Serializer w = Serializer::Writer();
  w.Section("policy", 1);
  Serializer r = Serializer::Reader(w.buffer());
  r.Section("shard", 1);
  EXPECT_FALSE(r.ok());
}

TEST(SerializerTest, TruncatedInputFailsInsteadOfMisreading) {
  Serializer w = Serializer::Writer();
  std::vector<double> v = {1.0, 2.0, 3.0};
  w.VecF64(v);
  const std::string full = w.buffer();
  // Every proper prefix must fail cleanly — no partial vectors, no huge
  // allocations from a torn length field.
  for (size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<double> out;
    Serializer r = Serializer::Reader(std::string_view(full).substr(0, cut));
    r.VecF64(out);
    EXPECT_FALSE(r.ok()) << "prefix of " << cut << " bytes parsed";
  }
}

TEST(SerializerTest, CorruptLengthFieldCannotDriveHugeAllocation) {
  // A length claiming more elements than remaining bytes must fail at the
  // length, before any allocation proportional to it.
  Serializer w = Serializer::Writer();
  uint64_t huge = ~0ull;
  w.U64(huge);
  std::vector<std::string> out;
  Serializer r = Serializer::Reader(w.buffer());
  r.VecStr(out);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(out.empty());
}

TEST(SerializerTest, TrailingBytesFailExpectExhausted) {
  Serializer w = Serializer::Writer();
  bool b = true;
  w.Bool(b);
  w.Bool(b);
  Serializer r = Serializer::Reader(w.buffer());
  bool rb = false;
  r.Bool(rb);
  r.ExpectExhausted();  // one Bool of the two consumed
  EXPECT_FALSE(r.ok());
}

TEST(SerializerTest, BoolRejectsNonCanonicalBytes) {
  std::string bytes = "\x02";
  Serializer r = Serializer::Reader(bytes);
  bool b = false;
  r.Bool(b);
  EXPECT_FALSE(r.ok());
}

TEST(SerializerTest, FingerprinterSkipsTimingFields) {
  struct Timed {
    double value = 1.0;
    double seconds = 0.0;
    void StreamState(Serializer& s) {
      s.F64(value);
      s.TimingF64(seconds);
    }
  };
  Timed a{3.5, 0.001};
  Timed b{3.5, 99.0};  // same content, different wall clock
  EXPECT_EQ(FingerprintState(a), FingerprintState(b));

  Timed c{3.6, 0.001};
  EXPECT_NE(FingerprintState(a), FingerprintState(c));

  // In read/write mode TimingF64 is a normal field and round-trips.
  Serializer w = Serializer::Writer();
  a.StreamState(w);
  Timed restored;
  Serializer r = Serializer::Reader(w.buffer());
  restored.StreamState(r);
  r.ExpectExhausted();
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(restored.seconds, a.seconds);
}

TEST(SerializerTest, VecObjRoundTrip) {
  struct Point {
    int x = 0;
    int y = 0;
    void StreamState(Serializer& s) {
      s.I32(x);
      s.I32(y);
    }
    bool operator==(const Point& o) const { return x == o.x && y == o.y; }
  };
  std::vector<Point> points = {{1, 2}, {-3, 4}, {0, 0}};
  Serializer w = Serializer::Writer();
  w.VecObj(points);
  std::vector<Point> restored;
  Serializer r = Serializer::Reader(w.buffer());
  r.VecObj(restored);
  r.ExpectExhausted();
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(restored, points);
}

TEST(SerializerTest, FingerprintObjectRoundTrip) {
  Fingerprint fp;
  fp.hi = 0x1122334455667788ull;
  fp.lo = 0x99AABBCCDDEEFF00ull;
  Serializer w = Serializer::Writer();
  w.Object(fp);
  Fingerprint restored;
  Serializer r = Serializer::Reader(w.buffer());
  r.Object(restored);
  r.ExpectExhausted();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(restored, fp);
}

}  // namespace
}  // namespace auditgame::util
