#include "lp/lp_format.h"

#include <gtest/gtest.h>

#include "lp/model.h"

namespace auditgame::lp {
namespace {

TEST(LpFormatTest, GoldenSmallModel) {
  LpModel model;
  const int x = model.AddVariable(1.0, 0.0, kInfinity, "x");
  const int y = model.AddVariable(-2.5, -kInfinity, kInfinity, "y");
  const int row = model.AddConstraint(Sense::kGreaterEqual, 1.0, "r");
  model.AddCoefficient(row, x, 1.0);
  model.AddCoefficient(row, y, -3.0);

  const std::string text = WriteLpFormat(model);
  EXPECT_EQ(text,
            "\\ written by auditgame lp::WriteLpFormat\n"
            "Minimize\n"
            " obj: 1 x - 2.5 y\n"
            "Subject To\n"
            " r: 1 x - 3 y >= 1\n"
            "Bounds\n"
            " y free\n"
            "End\n");
}

TEST(LpFormatTest, EqualityAndLessEqualSenses) {
  LpModel model;
  const int x = model.AddNonNegativeVariable(0.0, "x");
  const int r1 = model.AddConstraint(Sense::kEqual, 2.0, "eq");
  model.AddCoefficient(r1, x, 1.0);
  const int r2 = model.AddConstraint(Sense::kLessEqual, 5.0, "le");
  model.AddCoefficient(r2, x, 2.0);
  const std::string text = WriteLpFormat(model);
  EXPECT_NE(text.find("eq: 1 x = 2"), std::string::npos);
  EXPECT_NE(text.find("le: 2 x <= 5"), std::string::npos);
}

TEST(LpFormatTest, BoundsRendering) {
  LpModel model;
  model.AddVariable(0.0, 1.0, 4.0, "boxed");
  model.AddVariable(0.0, -kInfinity, 7.0, "ub_only");
  model.AddVariable(0.0, 2.0, kInfinity, "lb_only");
  model.AddVariable(0.0, 0.0, kInfinity, "default");
  const std::string text = WriteLpFormat(model);
  EXPECT_NE(text.find("1 <= boxed <= 4"), std::string::npos);
  EXPECT_NE(text.find("ub_only <= 7"), std::string::npos);
  EXPECT_NE(text.find("lb_only >= 2"), std::string::npos);
  // The default 0 <= x < inf bound is omitted.
  EXPECT_EQ(text.find("default >="), std::string::npos);
}

TEST(LpFormatTest, SanitizesNames) {
  LpModel model;
  model.AddVariable(1.0, 0.0, kInfinity, "bad name!");
  const std::string text = WriteLpFormat(model);
  EXPECT_NE(text.find("bad_name_"), std::string::npos);
  EXPECT_EQ(text.find("bad name!"), std::string::npos);
}

TEST(LpFormatTest, ZeroObjectiveStillValid) {
  LpModel model;
  model.AddNonNegativeVariable(0.0, "x");
  const std::string text = WriteLpFormat(model);
  EXPECT_NE(text.find("obj: 0 x"), std::string::npos);
}

}  // namespace
}  // namespace auditgame::lp
