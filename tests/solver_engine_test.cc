#include "solver/engine.h"

#include <vector>

#include <gtest/gtest.h>

#include "data/syn_a.h"
#include "tests/test_util.h"

namespace auditgame::solver {
namespace {

EngineRequest IshmCggsRequest(const core::GameInstance& instance,
                              double budget, double eps) {
  EngineRequest request;
  request.solver = "ishm-cggs";
  request.instance = &instance;
  request.budget = budget;
  request.options.ishm.step_size = eps;
  return request;
}

TEST(SolverEngineTest, ReportsThreadCount) {
  SolverEngine engine(3);
  EXPECT_EQ(engine.num_threads(), 3);
}

TEST(SolverEngineTest, BatchMatchesSerialBitForBit) {
  const core::GameInstance tiny = testutil::MakeTinyGame();
  const auto syn_a = data::MakeSynA();
  ASSERT_TRUE(syn_a.ok());

  // A heterogeneous batch: several budgets, two instances, two backends.
  std::vector<EngineRequest> requests;
  requests.push_back(IshmCggsRequest(tiny, 2.0, 0.25));
  requests.push_back(IshmCggsRequest(tiny, 3.0, 0.25));
  requests.push_back(IshmCggsRequest(*syn_a, 6.0, 0.3));
  requests.push_back(IshmCggsRequest(*syn_a, 10.0, 0.3));
  EngineRequest full;
  full.solver = "full-lp";
  full.instance = &*syn_a;
  full.budget = 8.0;
  full.thresholds = {3.0, 2.0, 2.0, 1.0};
  requests.push_back(full);

  std::vector<util::StatusOr<SolveResult>> serial;
  for (const auto& request : requests) {
    serial.push_back(SolverEngine::SolveOne(request));
  }

  SolverEngine engine(4);
  const auto parallel = engine.SolveAll(requests);
  ASSERT_EQ(parallel.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(serial[i].ok()) << i << ": " << serial[i].status();
    ASSERT_TRUE(parallel[i].ok()) << i << ": " << parallel[i].status();
    EXPECT_EQ(parallel[i]->solver, requests[i].solver);
    EXPECT_EQ(parallel[i]->objective, serial[i]->objective) << i;
    EXPECT_EQ(parallel[i]->thresholds, serial[i]->thresholds) << i;
    EXPECT_EQ(parallel[i]->policy.orderings, serial[i]->policy.orderings) << i;
    EXPECT_EQ(parallel[i]->policy.probabilities,
              serial[i]->policy.probabilities)
        << i;
  }
}

TEST(SolverEngineTest, RepeatedBatchesAreDeterministic) {
  const core::GameInstance tiny = testutil::MakeTinyGame();
  std::vector<EngineRequest> requests;
  for (int i = 0; i < 8; ++i) {
    requests.push_back(IshmCggsRequest(tiny, 1.0 + i * 0.5, 0.25));
  }
  SolverEngine engine(4);
  const auto first = engine.SolveAll(requests);
  const auto second = engine.SolveAll(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(first[i].ok());
    ASSERT_TRUE(second[i].ok());
    EXPECT_EQ(first[i]->objective, second[i]->objective) << i;
    EXPECT_EQ(first[i]->thresholds, second[i]->thresholds) << i;
  }
}

TEST(SolverEngineTest, FailuresAreIsolatedPerSlot) {
  const core::GameInstance tiny = testutil::MakeTinyGame();
  std::vector<EngineRequest> requests;
  requests.push_back(IshmCggsRequest(tiny, 2.0, 0.25));  // ok
  EngineRequest unknown = IshmCggsRequest(tiny, 2.0, 0.25);
  unknown.solver = "no-such-solver";
  requests.push_back(unknown);  // unknown backend
  EngineRequest null_instance;
  null_instance.solver = "ishm-cggs";
  requests.push_back(null_instance);  // missing instance

  SolverEngine engine(2);
  const auto results = engine.SolveAll(requests);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok()) << results[0].status();
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), util::StatusCode::kNotFound);
  ASSERT_FALSE(results[2].ok());
  EXPECT_EQ(results[2].status().code(), util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace auditgame::solver
