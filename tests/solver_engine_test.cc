#include "solver/engine.h"

#include <vector>

#include <gtest/gtest.h>

#include "data/syn_a.h"
#include "tests/test_util.h"

namespace auditgame::solver {
namespace {

EngineRequest IshmCggsRequest(const core::GameInstance& instance,
                              double budget, double eps) {
  EngineRequest request;
  request.solver = "ishm-cggs";
  request.instance = &instance;
  request.budget = budget;
  request.options.ishm.step_size = eps;
  return request;
}

TEST(SolverEngineTest, ReportsThreadCount) {
  SolverEngine engine(3);
  EXPECT_EQ(engine.num_threads(), 3);
}

TEST(SolverEngineTest, BatchMatchesSerialBitForBit) {
  const core::GameInstance tiny = testutil::MakeTinyGame();
  const auto syn_a = data::MakeSynA();
  ASSERT_TRUE(syn_a.ok());

  // A heterogeneous batch: several budgets, two instances, two backends.
  std::vector<EngineRequest> requests;
  requests.push_back(IshmCggsRequest(tiny, 2.0, 0.25));
  requests.push_back(IshmCggsRequest(tiny, 3.0, 0.25));
  requests.push_back(IshmCggsRequest(*syn_a, 6.0, 0.3));
  requests.push_back(IshmCggsRequest(*syn_a, 10.0, 0.3));
  EngineRequest full;
  full.solver = "full-lp";
  full.instance = &*syn_a;
  full.budget = 8.0;
  full.thresholds = {3.0, 2.0, 2.0, 1.0};
  requests.push_back(full);

  std::vector<util::StatusOr<SolveResult>> serial;
  for (const auto& request : requests) {
    serial.push_back(SolverEngine::SolveOne(request));
  }

  SolverEngine engine(4);
  const auto parallel = engine.SolveAll(requests);
  ASSERT_EQ(parallel.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(serial[i].ok()) << i << ": " << serial[i].status();
    ASSERT_TRUE(parallel[i].ok()) << i << ": " << parallel[i].status();
    EXPECT_EQ(parallel[i]->solver, requests[i].solver);
    EXPECT_EQ(parallel[i]->objective, serial[i]->objective) << i;
    EXPECT_EQ(parallel[i]->thresholds, serial[i]->thresholds) << i;
    EXPECT_EQ(parallel[i]->policy.orderings, serial[i]->policy.orderings) << i;
    EXPECT_EQ(parallel[i]->policy.probabilities,
              serial[i]->policy.probabilities)
        << i;
  }
}

TEST(SolverEngineTest, RepeatedBatchesAreDeterministic) {
  const core::GameInstance tiny = testutil::MakeTinyGame();
  std::vector<EngineRequest> requests;
  for (int i = 0; i < 8; ++i) {
    requests.push_back(IshmCggsRequest(tiny, 1.0 + i * 0.5, 0.25));
  }
  SolverEngine engine(4);
  const auto first = engine.SolveAll(requests);
  const auto second = engine.SolveAll(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(first[i].ok());
    ASSERT_TRUE(second[i].ok());
    EXPECT_EQ(first[i]->objective, second[i]->objective) << i;
    EXPECT_EQ(first[i]->thresholds, second[i]->thresholds) << i;
  }
}

TEST(SolverEngineTest, EmptyBatchReturnsEmptyResults) {
  SolverEngine engine(2);
  EXPECT_TRUE(engine.SolveAll({}).empty());
  const auto stats = engine.compile_cache_stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0);
}

TEST(SolverEngineTest, AllNullInstancesFailPerSlot) {
  std::vector<EngineRequest> requests(3);
  for (auto& request : requests) request.solver = "ishm-cggs";
  SolverEngine engine(2);
  const auto results = engine.SolveAll(requests);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& result : results) {
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  }
}

TEST(SolverEngineTest, SolverCreateFailureMidBatchIsIsolated) {
  const core::GameInstance tiny = testutil::MakeTinyGame();
  std::vector<EngineRequest> requests;
  requests.push_back(IshmCggsRequest(tiny, 2.0, 0.25));
  EngineRequest bad = IshmCggsRequest(tiny, 2.0, 0.25);
  bad.solver = "not-a-registered-backend";  // Create() fails mid-batch
  requests.push_back(bad);
  requests.push_back(IshmCggsRequest(tiny, 3.0, 0.25));

  SolverEngine engine(2);
  const auto results = engine.SolveAll(requests);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok()) << results[0].status();
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), util::StatusCode::kNotFound);
  EXPECT_TRUE(results[2].ok()) << results[2].status();
}

TEST(SolverEngineTest, CompileCachePersistsAcrossBatches) {
  const core::GameInstance tiny = testutil::MakeTinyGame();
  // A content-equal copy behind a different pointer must also hit.
  const core::GameInstance copy = tiny;
  std::vector<EngineRequest> requests;
  requests.push_back(IshmCggsRequest(tiny, 2.0, 0.25));
  requests.push_back(IshmCggsRequest(copy, 3.0, 0.25));

  SolverEngine engine(2);
  (void)engine.SolveAll(requests);
  auto stats = engine.compile_cache_stats();
  EXPECT_EQ(stats.misses, 1);  // compiled once ever, not once per pointer
  EXPECT_EQ(stats.hits, 1);

  (void)engine.SolveAll(requests);
  stats = engine.compile_cache_stats();
  EXPECT_EQ(stats.misses, 1);  // second batch recompiles nothing
  EXPECT_EQ(stats.hits, 3);

  // Drifted alert-count distributions leave the compiled structure (type
  // count + adversaries) unchanged, so the serving loop's per-cycle
  // refits must keep hitting.
  core::GameInstance drifted = tiny;
  drifted.alert_distributions = {prob::CountDistribution::Constant(3),
                                 prob::CountDistribution::Constant(1)};
  std::vector<EngineRequest> drifted_batch = {
      IshmCggsRequest(drifted, 2.0, 0.25)};
  (void)engine.SolveAll(drifted_batch);
  stats = engine.compile_cache_stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 4);
}

TEST(SolverEngineTest, InvalidInstancesAreNeverCached) {
  core::GameInstance broken = testutil::MakeTinyGame();
  broken.alert_distributions.pop_back();  // size mismatch -> invalid
  std::vector<EngineRequest> requests = {IshmCggsRequest(broken, 2.0, 0.25)};
  SolverEngine engine(2);
  const auto results = engine.SolveAll(requests);
  ASSERT_FALSE(results[0].ok());
  const auto stats = engine.compile_cache_stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0);

  // The valid game with the same structure must not be poisoned by (or
  // collide with) the invalid one.
  const core::GameInstance tiny = testutil::MakeTinyGame();
  std::vector<EngineRequest> ok_batch = {IshmCggsRequest(tiny, 2.0, 0.25)};
  EXPECT_TRUE(engine.SolveAll(ok_batch)[0].ok());
}

// Stress: interleave repeated batches over one instance (every batch after
// the first is served from the compile cache) and assert each result stays
// bit-for-bit equal to an uncached serial solve of the same request.
TEST(SolverEngineTest, CachedBatchesStayBitForBitEqualToColdSolves) {
  const core::GameInstance tiny = testutil::MakeTinyGame();
  std::vector<EngineRequest> requests;
  for (int i = 0; i < 6; ++i) {
    requests.push_back(IshmCggsRequest(tiny, 1.0 + 0.5 * i, 0.25));
  }
  std::vector<util::StatusOr<SolveResult>> cold;
  for (const auto& request : requests) {
    cold.push_back(SolverEngine::SolveOne(request));
  }

  SolverEngine engine(4);
  for (int round = 0; round < 5; ++round) {
    const auto batch = engine.SolveAll(requests);
    ASSERT_EQ(batch.size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      ASSERT_TRUE(cold[i].ok());
      ASSERT_TRUE(batch[i].ok()) << round << "/" << i << ": "
                                 << batch[i].status();
      EXPECT_EQ(batch[i]->objective, cold[i]->objective) << i;
      EXPECT_EQ(batch[i]->thresholds, cold[i]->thresholds) << i;
      EXPECT_EQ(batch[i]->policy.orderings, cold[i]->policy.orderings) << i;
      EXPECT_EQ(batch[i]->policy.probabilities, cold[i]->policy.probabilities)
          << i;
    }
  }
  EXPECT_EQ(engine.compile_cache_stats().misses, 1);
}

TEST(SolverEngineTest, FailuresAreIsolatedPerSlot) {
  const core::GameInstance tiny = testutil::MakeTinyGame();
  std::vector<EngineRequest> requests;
  requests.push_back(IshmCggsRequest(tiny, 2.0, 0.25));  // ok
  EngineRequest unknown = IshmCggsRequest(tiny, 2.0, 0.25);
  unknown.solver = "no-such-solver";
  requests.push_back(unknown);  // unknown backend
  EngineRequest null_instance;
  null_instance.solver = "ishm-cggs";
  requests.push_back(null_instance);  // missing instance

  SolverEngine engine(2);
  const auto results = engine.SolveAll(requests);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok()) << results[0].status();
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), util::StatusCode::kNotFound);
  ASSERT_FALSE(results[2].ok());
  EXPECT_EQ(results[2].status().code(), util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace auditgame::solver
