// The CggsOptions::pricing_threads determinism contract: for any thread
// count the solve is bit-for-bit identical to the serial path — same
// objective bits, same column pool, same policy support and probabilities.
// Exercised over 50 generated scenario games spanning all three families,
// both detection modes, and several thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/cggs.h"
#include "core/detection.h"
#include "core/game.h"
#include "scenario/generator.h"
#include "util/thread_pool.h"

namespace auditgame::core {
namespace {

void ExpectBitIdentical(const CggsResult& serial, const CggsResult& parallel,
                        const std::string& label) {
  // Exact double equality everywhere: the contract is bit-for-bit, not
  // tolerance agreement.
  EXPECT_EQ(serial.objective, parallel.objective) << label;
  EXPECT_EQ(serial.columns, parallel.columns) << label;
  EXPECT_EQ(serial.lp_solves, parallel.lp_solves) << label;
  EXPECT_EQ(serial.columns_generated, parallel.columns_generated) << label;
  EXPECT_EQ(serial.warm_lp_solves, parallel.warm_lp_solves) << label;
  EXPECT_EQ(serial.policy.orderings, parallel.policy.orderings) << label;
  EXPECT_EQ(serial.policy.probabilities, parallel.policy.probabilities)
      << label;
  EXPECT_EQ(serial.policy.thresholds, parallel.policy.thresholds) << label;
}

scenario::ScenarioSpec SpecForGame(int index) {
  scenario::ScenarioSpec spec;
  switch (index % 3) {
    case 0:
      spec.family = scenario::Family::kZipfAlerts;
      spec.base_alert_mean = 10.0;
      break;
    case 1:
      spec.family = scenario::Family::kCorrelatedGroups;
      spec.group_size = 2;
      break;
    default:
      spec.family = scenario::Family::kUniformBaseline;
      break;
  }
  spec.num_types = 4 + index % 2;
  spec.num_adversaries = 3;
  spec.victims_per_adversary = 3;
  spec.seed = static_cast<uint64_t>(100 + index);
  return spec;
}

std::vector<double> FlooredMeanThresholds(const GameInstance& instance) {
  std::vector<double> thresholds;
  for (const auto& dist : instance.alert_distributions) {
    thresholds.push_back(std::floor(dist.Mean()));
  }
  return thresholds;
}

TEST(CggsParallelPricingTest, SerialAndParallelAgreeOn50GeneratedGames) {
  for (int game_index = 0; game_index < 50; ++game_index) {
    const auto instance = scenario::Generate(SpecForGame(game_index));
    ASSERT_TRUE(instance.ok()) << game_index;
    const auto compiled = Compile(*instance);
    ASSERT_TRUE(compiled.ok()) << game_index;
    const double budget = 1.5 * instance->num_types();
    const std::vector<double> thresholds = FlooredMeanThresholds(*instance);

    DetectionModel::Options detection_options;
    if (game_index % 10 == 9) {
      // Every tenth game prices through the Monte-Carlo estimator, the
      // mode whose per-candidate cost the parallel path exists for.
      detection_options.mode = DetectionModel::Mode::kMonteCarlo;
      detection_options.mc_samples = 400;
    }
    auto detection =
        DetectionModel::Create(*instance, budget, detection_options);
    ASSERT_TRUE(detection.ok()) << game_index;

    CggsOptions options;
    options.pricing_threads = 1;
    const auto serial = SolveCggs(*compiled, *detection, thresholds, options);
    ASSERT_TRUE(serial.ok()) << game_index;

    const int threads = 2 + game_index % 3;  // 2, 3, 4
    options.pricing_threads = threads;
    const auto parallel =
        SolveCggs(*compiled, *detection, thresholds, options);
    ASSERT_TRUE(parallel.ok()) << game_index;

    ExpectBitIdentical(*serial, *parallel,
                       "game " + std::to_string(game_index) + " threads " +
                           std::to_string(threads));
  }
}

TEST(CggsParallelPricingTest, ZeroAndOneThreadsAreTheSerialPath) {
  const auto instance = scenario::Generate(SpecForGame(1));
  ASSERT_TRUE(instance.ok());
  const auto compiled = Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(*instance, 6.0);
  ASSERT_TRUE(detection.ok());
  const std::vector<double> thresholds = FlooredMeanThresholds(*instance);
  CggsOptions options;
  options.pricing_threads = 0;
  const auto zero = SolveCggs(*compiled, *detection, thresholds, options);
  options.pricing_threads = 1;
  const auto one = SolveCggs(*compiled, *detection, thresholds, options);
  ASSERT_TRUE(zero.ok());
  ASSERT_TRUE(one.ok());
  ExpectBitIdentical(*zero, *one, "0 vs 1 threads");
}

TEST(CggsParallelPricingTest, SharedPoolMatchesOwnedPool) {
  // A caller-provided pool (even one sized differently from
  // pricing_threads) must not change anything: chunking follows
  // pricing_threads, not pool size.
  const auto instance = scenario::Generate(SpecForGame(3));
  ASSERT_TRUE(instance.ok());
  const auto compiled = Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(*instance, 6.0);
  ASSERT_TRUE(detection.ok());
  const std::vector<double> thresholds = FlooredMeanThresholds(*instance);
  CggsOptions options;
  options.pricing_threads = 3;
  const auto owned = SolveCggs(*compiled, *detection, thresholds, options);
  ASSERT_TRUE(owned.ok());
  util::ThreadPool shared(2);
  options.pricing_pool = &shared;
  const auto external = SolveCggs(*compiled, *detection, thresholds, options);
  ASSERT_TRUE(external.ok());
  ExpectBitIdentical(*owned, *external, "owned vs shared pool");
}

TEST(CggsParallelPricingTest, WarmStartsStayIdenticalUnderParallelPricing) {
  // The serving layer's warm path seeds initial_orderings; the parallel
  // reduction must not disturb it.
  const auto instance = scenario::Generate(SpecForGame(2));
  ASSERT_TRUE(instance.ok());
  const auto compiled = Compile(*instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(*instance, 6.0);
  ASSERT_TRUE(detection.ok());
  const std::vector<double> thresholds = FlooredMeanThresholds(*instance);

  CggsOptions options;
  const auto cold = SolveCggs(*compiled, *detection, thresholds, options);
  ASSERT_TRUE(cold.ok());
  options.initial_orderings = cold->policy.orderings;
  options.pricing_threads = 1;
  const auto warm_serial =
      SolveCggs(*compiled, *detection, thresholds, options);
  options.pricing_threads = 4;
  const auto warm_parallel =
      SolveCggs(*compiled, *detection, thresholds, options);
  ASSERT_TRUE(warm_serial.ok());
  ASSERT_TRUE(warm_parallel.ok());
  ExpectBitIdentical(*warm_serial, *warm_parallel, "warm-started");
}

}  // namespace
}  // namespace auditgame::core
