#include "core/policy.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace auditgame::core {
namespace {

using testutil::MakeTinyGame;

AuditPolicy MakePolicy(std::vector<std::vector<int>> orderings,
                       std::vector<double> probs,
                       std::vector<double> thresholds, double budget) {
  AuditPolicy policy;
  policy.orderings = std::move(orderings);
  policy.probabilities = std::move(probs);
  policy.thresholds = std::move(thresholds);
  policy.budget = budget;
  return policy;
}

TEST(AuditPolicyTest, ValidatesDistribution) {
  EXPECT_TRUE(
      MakePolicy({{0, 1}}, {1.0}, {1, 1}, 2).Validate(2).ok());
  EXPECT_TRUE(MakePolicy({{0, 1}, {1, 0}}, {0.5, 0.5}, {1, 1}, 2)
                  .Validate(2)
                  .ok());
  EXPECT_FALSE(MakePolicy({{0, 1}}, {0.5}, {1, 1}, 2).Validate(2).ok());
  EXPECT_FALSE(MakePolicy({{0, 1}}, {1.0, 0.0}, {1, 1}, 2).Validate(2).ok());
  EXPECT_FALSE(MakePolicy({}, {}, {1, 1}, 2).Validate(2).ok());
}

TEST(AuditPolicyTest, ValidatesOrderings) {
  EXPECT_FALSE(MakePolicy({{0, 0}}, {1.0}, {1, 1}, 2).Validate(2).ok());
  EXPECT_FALSE(MakePolicy({{0}}, {1.0}, {1, 1}, 2).Validate(2).ok());
  EXPECT_FALSE(MakePolicy({{0, 2}}, {1.0}, {1, 1}, 2).Validate(2).ok());
  EXPECT_FALSE(MakePolicy({{0, 1}}, {1.0}, {1}, 2).Validate(2).ok());
  EXPECT_FALSE(MakePolicy({{0, 1}}, {1.0}, {1, 1}, -2).Validate(2).ok());
}

TEST(EvaluatePolicyTest, PureStrategyBestResponse) {
  // Tiny game, B = 3, thresholds [2, 2], order (0, 1):
  // Pal = [1.0, 0.5]. Victim utilities:
  //   v0 (type 0, R 4): -1*2 + 0*4 - 1 = -3
  //   v1 (type 1, R 6): -0.5*2 + 0.5*6 - 1 = 1
  // Best response: v1 with utility 1 -> auditor loss 1.
  const GameInstance instance = MakeTinyGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  const auto eval = EvaluatePolicy(
      *compiled, *detection, MakePolicy({{0, 1}}, {1.0}, {2, 2}, 3));
  ASSERT_TRUE(eval.ok());
  EXPECT_NEAR(eval->auditor_loss, 1.0, 1e-9);
  ASSERT_EQ(eval->best_response_victim.size(), 1u);
  // Compiled victim order is canonical (not insertion order); identify the
  // best response by its benefit.
  const int br = eval->best_response_victim[0];
  ASSERT_GE(br, 0);
  EXPECT_DOUBLE_EQ(compiled->groups[0].victims[static_cast<size_t>(br)].benefit,
                   6.0);
}

TEST(EvaluatePolicyTest, MixingReducesLoss) {
  // Mixing the two orderings equally gives Pal = [0.75, 0.75]:
  //   v0: -0.75*2 + 0.25*4 - 1 = -1.5
  //   v1: -0.75*2 + 0.25*6 - 1 = -1.0 -> opt out (0) is better.
  const GameInstance instance = MakeTinyGame();
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  const auto eval = EvaluatePolicy(
      *compiled, *detection,
      MakePolicy({{0, 1}, {1, 0}}, {0.5, 0.5}, {2, 2}, 3));
  ASSERT_TRUE(eval.ok());
  EXPECT_NEAR(eval->auditor_loss, 0.0, 1e-9);
  EXPECT_EQ(eval->best_response_victim[0], -1);  // deterred
}

TEST(EvaluatePolicyTest, NoOptOutAllowsNegativeLoss) {
  const GameInstance instance = MakeTinyGame(/*can_opt_out=*/false);
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  const auto eval = EvaluatePolicy(
      *compiled, *detection,
      MakePolicy({{0, 1}, {1, 0}}, {0.5, 0.5}, {2, 2}, 3));
  ASSERT_TRUE(eval.ok());
  EXPECT_NEAR(eval->auditor_loss, -1.0, 1e-9);
  const int br = eval->best_response_victim[0];
  ASSERT_GE(br, 0);
  EXPECT_DOUBLE_EQ(compiled->groups[0].victims[static_cast<size_t>(br)].benefit,
                   6.0);
}

TEST(EvaluatePolicyTest, WeightsScaleLoss) {
  GameInstance instance = MakeTinyGame(/*can_opt_out=*/false);
  instance.adversaries[0].attack_probability = 0.5;
  const auto compiled = Compile(instance);
  ASSERT_TRUE(compiled.ok());
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  const auto eval = EvaluatePolicy(
      *compiled, *detection,
      MakePolicy({{0, 1}, {1, 0}}, {0.5, 0.5}, {2, 2}, 3));
  ASSERT_TRUE(eval.ok());
  EXPECT_NEAR(eval->auditor_loss, -0.5, 1e-9);
}

TEST(MixedDetectionTest, AveragesOverOrderings) {
  const GameInstance instance = MakeTinyGame();
  auto detection = DetectionModel::Create(instance, 3.0);
  ASSERT_TRUE(detection.ok());
  const auto mixed = MixedDetectionProbabilities(
      *detection, MakePolicy({{0, 1}, {1, 0}}, {0.5, 0.5}, {2, 2}, 3));
  ASSERT_TRUE(mixed.ok());
  EXPECT_NEAR((*mixed)[0], 0.75, 1e-12);
  EXPECT_NEAR((*mixed)[1], 0.75, 1e-12);
}

}  // namespace
}  // namespace auditgame::core
