// loadgen: socket-level load generator for the audit server. Multiplexes
// many simulated tenants — tens of thousands, far more than one thread or
// connection per tenant could reach — over a small set of shared,
// *pipelined* connections: each connection keeps a window of in-flight
// requests (at most one per tenant, so per-tenant order stays meaningful),
// pairs responses back to tenants by correlation id, and batches both
// directions (one send(2) per window top-up, one recv(2) per response
// burst). Requests use the compact binary encoding of the hot verbs by
// default (--encoding=json for the debug path). Each tenant replays a
// scenario alert stream (src/scenario/) as `ingest` + `solve_cycle`
// cycles; --solves_per_cycle polls the policy several times per ingest
// (the read-heavy serving pattern the policy cache exists for).
//
// The serving contract is verified as it goes: every request must be
// answered (policy, `overloaded`, or an error frame), responses must pair
// with a sent request, and each tenant's solve responses must carry
// strictly increasing cycle numbers — the per-tenant ordering the shard
// routing guarantees even while responses interleave across tenants.
// `overloaded` responses are retried with a backoff that never blocks the
// connection (the tenant sits out while others keep the window full).
// Exits non-zero when any check fails, or when --min_throughput is set
// and not met.
//
// With --connect it drives one or more external servers (comma-separated
// targets; connection c dials target c mod targets) — an audit_server for
// the CI smoke job's two-process mode, or audit_router front doors for the
// cluster drill. Without it, it starts an in-process server on an
// ephemeral port — the self-contained mode ctest runs — and shuts it down
// gracefully at the end. Against a cluster, two extra recovery paths keep
// a killed backend a latency blip instead of a failed run: `backend_down`
// responses are retried like `overloaded` (the router answers them for
// requests lost with a dead backend — nothing was applied), and a dropped
// connection is re-dialed up to --reconnects times with every in-flight
// request re-sent byte-identical (same correlation ids, so the pairing
// and per-tenant order checks keep running across the gap).
//
//   loadgen --tenants=10000 --cycles=5 --connections=2 --window=256
//   loadgen --connect=127.0.0.1:7353 --tenants=2000 --encoding=binary
//   loadgen --connect=127.0.0.1:7450 --reconnects=4 --retries=400
#include <signal.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/client.h"
#include "scenario/generator.h"
#include "scenario/stream.h"
#include "server/audit_server.h"
#include "server/binary_codec.h"
#include "server/protocol.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/percentile.h"
#include "util/timer.h"

namespace {

using namespace auditgame;  // NOLINT
using Clock = std::chrono::steady_clock;

struct WorkerConfig {
  int cycles = 0;
  int solves_per_cycle = 1;
  int window = 64;
  int retries = 0;
  int retry_backoff_ms = 0;
  int timeout_ms = 0;
  /// Transport re-dials allowed per connection before the run aborts.
  int reconnects = 0;
  bool binary = true;
  scenario::StreamSpec stream_spec;
};

/// One dial target; with multiple --connect entries, connection c drives
/// target c mod targets.
struct Target {
  std::string host;
  uint16_t port = 0;
};

struct WorkerResult {
  int64_t requests = 0;
  int64_t ok = 0;
  int64_t request_errors = 0;
  /// Requests that never got a response frame (timeout, dropped
  /// connection) — the "dropped in silence" class that must stay zero.
  int64_t transport_failures = 0;
  int64_t overloaded_retries = 0;
  /// Requests still `overloaded` after every retry (answered, but the
  /// op was abandoned).
  int64_t gave_up_overloaded = 0;
  /// `backend_down` responses retried (cluster mode: the request died with
  /// a backend; the retry re-routes to the failover target).
  int64_t backend_down_retries = 0;
  int64_t gave_up_backend_down = 0;
  /// Successful transport re-dials (every in-flight request re-sent).
  int64_t reconnects = 0;
  int64_t order_violations = 0;
  /// Responses whose correlation id matched no in-flight request.
  int64_t unmatched_responses = 0;
  std::vector<double> latency_seconds;
  std::vector<std::string> error_samples;

  void SampleError(std::string message) {
    if (error_samples.size() < 5) error_samples.push_back(std::move(message));
  }
};

/// One simulated tenant's replay state machine. At most one request of a
/// tenant is ever in flight, so its cycle order is checkable even while
/// the connection interleaves thousands of tenants.
struct TenantState {
  std::string name;
  std::unique_ptr<scenario::ScenarioStream> stream;
  enum class Phase { kIngest, kSolve, kDone } phase = Phase::kIngest;
  int cycle = 0;        // completed cycles
  int solves_done = 0;  // solve ops completed within the current cycle
  int attempts = 0;     // overloaded retries spent on the current op
  int64_t last_cycle = 0;
  bool in_flight = false;
  /// The current op's encoded payload, kept for overloaded retries (the
  /// retry re-sends the same bytes, same correlation id).
  std::string pending_payload;
  int64_t current_id = -1;
  Clock::time_point op_start;
  Clock::time_point backoff_until;
  /// Ops that reached a terminal answer, plus ops skipped after a failed
  /// ingest — the bookkeeping a transport-failure abort needs to count
  /// exactly the never-answered remainder.
  int64_t ops_terminal = 0;
  int64_t ops_skipped = 0;
};

/// A decoded terminal response, either encoding.
struct OpResponse {
  int64_t id = -1;
  enum class Status {
    kOk,
    kOverloaded,
    kBackendDown,
    kError
  } status = Status::kError;
  bool has_cycle = false;
  int64_t cycle = 0;
  std::string message;
};

util::StatusOr<OpResponse> DecodeResponse(const std::string& payload,
                                          bool binary) {
  OpResponse op;
  if (binary) {
    ASSIGN_OR_RETURN(server::BinaryResponse response,
                     server::DecodeBinaryResponse(payload));
    op.id = response.correlation_id;
    switch (response.status) {
      case server::kBinaryStatusOk:
        op.status = OpResponse::Status::kOk;
        break;
      case server::kBinaryStatusOverloaded:
        op.status = OpResponse::Status::kOverloaded;
        break;
      case server::kBinaryStatusBackendDown:
        op.status = OpResponse::Status::kBackendDown;
        break;
      default:
        op.status = OpResponse::Status::kError;
        break;
    }
    if (response.verb == server::kBinaryVerbSolveCycle &&
        response.status == server::kBinaryStatusOk) {
      op.has_cycle = true;
      op.cycle = response.cycle;
    }
    op.message = std::move(response.message);
    return op;
  }
  ASSIGN_OR_RETURN(util::JsonValue doc, util::JsonValue::Parse(payload));
  ASSIGN_OR_RETURN(double id, doc.GetNumber("id"));
  op.id = static_cast<int64_t>(id);
  ASSIGN_OR_RETURN(std::string status, doc.GetString("status"));
  if (status == "ok") {
    op.status = OpResponse::Status::kOk;
  } else if (status == "overloaded") {
    op.status = OpResponse::Status::kOverloaded;
  } else if (status == "backend_down") {
    op.status = OpResponse::Status::kBackendDown;
  } else {
    op.status = OpResponse::Status::kError;
  }
  if (auto cycle = doc.GetNumber("cycle"); cycle.ok()) {
    op.has_cycle = true;
    op.cycle = static_cast<int64_t>(*cycle);
  }
  if (const util::JsonValue* m = doc.Find("message");
      m != nullptr && m->is_string()) {
    op.message = m->as_string();
  }
  return op;
}

/// Ops each tenant sends over a full clean replay.
int64_t PlannedOps(const WorkerConfig& config) {
  return static_cast<int64_t>(config.cycles) *
         (1 + static_cast<int64_t>(config.solves_per_cycle));
}

/// Drives every tenant assigned to one shared connection to completion.
void RunConnection(const std::vector<int>& tenant_indices,
                   const std::vector<prob::CountDistribution>& baseline,
                   const WorkerConfig& config, const Target& target,
                   WorkerResult& result) {
  auto client = net::FrameClient::Connect(target.host, target.port,
                                          /*connect_wait_ms=*/10000);
  if (!client.ok()) {
    // The whole replay is unanswered: count every request it would have
    // sent as a transport failure rather than silently shrinking the run.
    const int64_t planned =
        PlannedOps(config) * static_cast<int64_t>(tenant_indices.size());
    result.requests += planned;
    result.transport_failures += planned;
    result.SampleError(client.status().ToString());
    return;
  }
  if (config.timeout_ms > 0) {
    (void)client->SetReceiveTimeout(config.timeout_ms);
  }

  std::vector<TenantState> tenants;
  tenants.reserve(tenant_indices.size());
  for (const int tenant_index : tenant_indices) {
    TenantState state;
    state.name = "tenant-" + std::to_string(tenant_index);
    scenario::StreamSpec spec = config.stream_spec;
    spec.seed += static_cast<uint64_t>(tenant_index);  // per-tenant stream
    state.stream =
        std::make_unique<scenario::ScenarioStream>(baseline, spec);
    tenants.push_back(std::move(state));
  }

  // id -> tenant slot for every in-flight request on this connection.
  std::unordered_map<int64_t, size_t> outstanding;
  outstanding.reserve(static_cast<size_t>(config.window) * 2);
  int64_t next_id = 0;
  size_t active = tenants.size();
  size_t cursor = 0;  // round-robin top-up position

  int reconnects_left = config.reconnects;

  // When the transport dies mid-replay, everything already sent but not
  // answered — and everything the connection's tenants would still have
  // sent — is counted as unanswered, mirroring the connect-failure path.
  const auto abort_connection = [&](const util::Status& status) {
    result.SampleError(status.ToString());
    result.transport_failures += static_cast<int64_t>(outstanding.size());
    for (const TenantState& tenant : tenants) {
      if (tenant.phase == TenantState::Phase::kDone) continue;
      int64_t remaining =
          PlannedOps(config) - tenant.ops_terminal - tenant.ops_skipped;
      if (tenant.in_flight) --remaining;  // counted via `outstanding` above
      if (remaining > 0) {
        result.requests += remaining;
        result.transport_failures += remaining;
      }
    }
  };

  // Bounded transport recovery: re-dial and re-send every in-flight
  // request byte-identical — same correlation ids, so nothing is double
  // counted and the pairing/order checks keep running. Safe against the
  // router because a dropped connection's unanswered requests are exactly
  // the ones that got no terminal response; re-sending re-routes them.
  // Returns false (caller aborts) once the budget is spent or the re-dial
  // itself fails.
  const auto try_recover = [&](const util::Status& status) -> bool {
    if (reconnects_left <= 0) return false;
    --reconnects_left;
    auto fresh = net::FrameClient::Connect(target.host, target.port,
                                           /*connect_wait_ms=*/10000);
    if (!fresh.ok()) {
      result.SampleError(fresh.status().ToString());
      return false;
    }
    client = std::move(fresh);
    if (config.timeout_ms > 0) {
      (void)client->SetReceiveTimeout(config.timeout_ms);
    }
    ++result.reconnects;
    result.SampleError("reconnected after: " + status.ToString());
    // Everything in flight was lost with the socket; hand the payloads
    // back to their tenants for the next top-up (requests were already
    // counted at first send; the re-send counts again, like a retry).
    for (const auto& [id, slot] : outstanding) {
      tenants[slot].in_flight = false;
    }
    outstanding.clear();
    return true;
  };

  // Advances one tenant past a terminal response. `ok` distinguishes a
  // served op from an abandoned one (error / gave-up overloaded) — a
  // failed ingest skips the cycle's solves, since solving now would run on
  // stale distributions.
  const auto advance = [&](TenantState& tenant, bool op_ok) {
    ++tenant.ops_terminal;
    tenant.pending_payload.clear();
    tenant.attempts = 0;
    const auto finish_cycle = [&] {
      ++tenant.cycle;
      tenant.solves_done = 0;
      tenant.phase = tenant.cycle >= config.cycles
                         ? TenantState::Phase::kDone
                         : TenantState::Phase::kIngest;
      if (tenant.phase == TenantState::Phase::kDone) --active;
    };
    if (tenant.phase == TenantState::Phase::kIngest) {
      if (!op_ok || config.solves_per_cycle == 0) {
        if (op_ok) {
          finish_cycle();
        } else {
          tenant.ops_skipped += config.solves_per_cycle;
          finish_cycle();
        }
        return;
      }
      tenant.phase = TenantState::Phase::kSolve;
      return;
    }
    // kSolve:
    ++tenant.solves_done;
    if (tenant.solves_done >= config.solves_per_cycle) finish_cycle();
  };

  const auto process_response = [&](const std::string& payload) -> bool {
    auto op = DecodeResponse(payload, config.binary);
    if (!op.ok()) {
      ++result.request_errors;
      result.SampleError(op.status().ToString());
      return true;  // undecodable response; the pairing check will catch loss
    }
    const auto it = outstanding.find(op->id);
    if (it == outstanding.end()) {
      ++result.unmatched_responses;
      result.SampleError("unmatched response id " + std::to_string(op->id));
      return true;
    }
    TenantState& tenant = tenants[it->second];
    outstanding.erase(it);
    tenant.in_flight = false;

    // `overloaded` and `backend_down` both mean nothing-was-applied, so
    // re-sending the same payload (same id) is safe; `backend_down`
    // additionally implies a cluster failover is in progress and the
    // retry will re-route to the tenant's new owner.
    if ((op->status == OpResponse::Status::kOverloaded ||
         op->status == OpResponse::Status::kBackendDown) &&
        tenant.attempts < config.retries) {
      ++tenant.attempts;
      if (op->status == OpResponse::Status::kOverloaded) {
        ++result.overloaded_retries;
      } else {
        ++result.backend_down_retries;
      }
      tenant.backoff_until =
          Clock::now() +
          std::chrono::milliseconds(config.retry_backoff_ms);
      return true;  // same payload re-queued by the next top-up
    }

    result.latency_seconds.push_back(
        std::chrono::duration<double>(Clock::now() - tenant.op_start)
            .count());
    if (op->status == OpResponse::Status::kOverloaded) {
      ++result.gave_up_overloaded;
      advance(tenant, /*op_ok=*/false);
      return true;
    }
    if (op->status == OpResponse::Status::kBackendDown) {
      ++result.gave_up_backend_down;
      advance(tenant, /*op_ok=*/false);
      return true;
    }
    if (op->status == OpResponse::Status::kError) {
      ++result.request_errors;
      if (!op->message.empty()) result.SampleError(op->message);
      advance(tenant, /*op_ok=*/false);
      return true;
    }
    if (tenant.phase == TenantState::Phase::kSolve) {
      ++result.ok;
      if (!op->has_cycle || op->cycle <= tenant.last_cycle) {
        ++result.order_violations;
      } else {
        tenant.last_cycle = op->cycle;
      }
    }
    advance(tenant, /*op_ok=*/true);
    return true;
  };

  while (active > 0) {
    // Top up the window: walk the tenants round-robin, queueing one op per
    // ready tenant until the window is full, then flush everything queued
    // with one send.
    const Clock::time_point now = Clock::now();
    Clock::time_point earliest_backoff = Clock::time_point::max();
    bool queued_any = false;
    size_t scanned = 0;
    while (outstanding.size() < static_cast<size_t>(config.window) &&
           scanned < tenants.size()) {
      const size_t slot = cursor;
      TenantState& tenant = tenants[slot];
      cursor = (cursor + 1) % tenants.size();
      ++scanned;
      if (tenant.phase == TenantState::Phase::kDone || tenant.in_flight) {
        continue;
      }
      if (tenant.backoff_until > now) {
        earliest_backoff = std::min(earliest_backoff, tenant.backoff_until);
        continue;
      }
      if (tenant.pending_payload.empty()) {
        const int64_t id = ++next_id;
        if (tenant.phase == TenantState::Phase::kIngest) {
          auto dists = tenant.stream->Next();
          if (!dists.ok()) {
            ++result.request_errors;
            result.SampleError(dists.status().ToString());
            tenant.phase = TenantState::Phase::kDone;
            --active;
            continue;
          }
          tenant.pending_payload =
              config.binary
                  ? server::EncodeBinaryIngestRequest(id, tenant.name,
                                                      *dists)
                  : server::MakeIngestRequest(id, tenant.name, *dists);
        } else {
          tenant.pending_payload =
              config.binary
                  ? server::EncodeBinarySolveCycleRequest(id, tenant.name)
                  : server::MakeSolveCycleRequest(id, tenant.name);
        }
        tenant.op_start = now;
        tenant.current_id = id;
      }
      client->QueueSend(tenant.pending_payload);
      outstanding.emplace(tenant.current_id, slot);
      tenant.in_flight = true;
      ++result.requests;
      queued_any = true;
    }
    if (queued_any) {
      if (util::Status sent = client->FlushSends(); !sent.ok()) {
        if (!try_recover(sent)) {
          abort_connection(sent);
          return;
        }
        continue;
      }
    }

    if (outstanding.empty()) {
      if (active == 0) break;
      if (earliest_backoff != Clock::time_point::max()) {
        std::this_thread::sleep_until(earliest_backoff);
      }
      continue;
    }

    // One blocking receive, then drain every response already buffered —
    // a burst of pipelined responses costs one recv(2).
    auto response = client->Receive();
    if (!response.ok()) {
      if (!try_recover(response.status())) {
        abort_connection(response.status());
        return;
      }
      continue;
    }
    process_response(*response);
    bool recovered = false;
    for (;;) {
      std::string buffered;
      auto more = client->ReceiveBuffered(&buffered);
      if (!more.ok()) {
        if (!try_recover(more.status())) {
          abort_connection(more.status());
          return;
        }
        recovered = true;
        break;
      }
      if (!*more) break;
      process_response(buffered);
    }
    if (recovered) continue;
  }
}

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("connect", "",
               "comma-separated host:port targets of running servers or "
               "routers (connection c dials target c mod targets; empty = "
               "start an audit_server in-process on an ephemeral port)");
  flags.Define("tenants", "64", "simulated tenants (multiplexed)");
  flags.Define("cycles", "25",
               "audit cycles per tenant (1 ingest + solves_per_cycle "
               "solves each)");
  flags.Define("solves_per_cycle", "1",
               "solve_cycle requests per ingest (policy polling)");
  flags.Define("connections", "2",
               "shared pipelined connections (one worker thread each)");
  flags.Define("window", "64",
               "max in-flight requests per connection (at most one per "
               "tenant)");
  flags.Define("encoding", "binary",
               "wire encoding of the hot verbs: binary, json");
  flags.Define("retries", "50",
               "max retries per overloaded/backend_down response");
  flags.Define("retry_backoff_ms", "5", "tenant sit-out after a retryable "
               "response");
  flags.Define("reconnects", "0",
               "transport re-dials per connection before the run aborts "
               "(cluster mode: ride out a router/backend restart); 0 = a "
               "dropped connection is fatal");
  flags.Define("timeout_ms", "30000", "per-response receive timeout");
  flags.Define("min_throughput", "0",
               "fail (and report throughput_floor_met=false) below this "
               "many requests/s (0 = no floor)");
  // Scenario flags must match the server's so ingest type counts line up.
  scenario::DefineScenarioFlags(flags, /*default_scenario=*/"uniform",
                                /*default_types=*/"5");
  flags.Define("stream", "jitter",
               "alert-stream evolution: jitter, walk, seasonal");
  flags.Define("drift", "0.05", "per-cycle drift amplitude");
  flags.Define("revisit", "5",
               "every k-th cycle replays the baseline exactly (0 = never)");
  flags.Define("season", "7", "cycles per seasonal oscillation");
  flags.Define("stream_seed", "1",
               "stream RNG seed (tenant i uses stream_seed + i)");
  flags.Define("json", "", "BENCH_server.json output path (empty = none)");
  // In-process-server configuration (with --connect only the reported
  // `shards` label is taken from here — pass the external server's real
  // value so the BENCH report describes the right topology).
  flags.Define("shards", "4",
               "in-process server: shard worker threads (with --connect: "
               "label-only, set to the server's value)");
  flags.Define("reactors", "1", "in-process server: reactor IO threads");
  flags.Define("queue_capacity", "128",
               "in-process server: per-shard queue bound");
  flags.Define("batch", "16", "in-process server: max batch per wakeup");
  flags.Define("budgets", "6,10", "in-process server: budgets per cycle");
  flags.Define("eps", "0.25", "in-process server: ISHM step size");
  flags.Define("warm_max_drift", "0.25",
               "in-process server: warm-start drift threshold");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpString(argv[0]);
    return 0;
  }
  signal(SIGPIPE, SIG_IGN);

  auto spec = scenario::SpecFromFlags(flags);
  if (!spec.ok()) {
    std::cerr << spec.status() << "\n";
    return 1;
  }
  auto instance = scenario::Generate(*spec);
  if (!instance.ok()) {
    std::cerr << instance.status() << "\n";
    return 1;
  }
  const std::vector<prob::CountDistribution> baseline =
      instance->alert_distributions;

  auto stream_kind = scenario::StreamKindFromName(flags.GetString("stream"));
  if (!stream_kind.ok()) {
    std::cerr << stream_kind.status() << "\n";
    return 1;
  }
  const std::string encoding = flags.GetString("encoding");
  if (encoding != "binary" && encoding != "json") {
    std::cerr << "--encoding must be binary or json\n";
    return 1;
  }

  WorkerConfig config;
  config.cycles = flags.GetInt("cycles");
  config.solves_per_cycle = std::max(0, flags.GetInt("solves_per_cycle"));
  config.window = std::max(1, flags.GetInt("window"));
  config.retries = flags.GetInt("retries");
  config.retry_backoff_ms = flags.GetInt("retry_backoff_ms");
  config.timeout_ms = flags.GetInt("timeout_ms");
  config.reconnects = std::max(0, flags.GetInt("reconnects"));
  config.binary = encoding == "binary";
  config.stream_spec.kind = *stream_kind;
  config.stream_spec.drift_amplitude = flags.GetDouble("drift");
  config.stream_spec.revisit_period = flags.GetInt("revisit");
  config.stream_spec.season_period = flags.GetInt("season");
  config.stream_spec.seed = static_cast<uint64_t>(flags.GetInt("stream_seed"));

  // Targets: external servers/routers, or an in-process server on an
  // ephemeral port.
  std::vector<Target> targets;
  std::unique_ptr<server::AuditServer> local_server;
  std::thread server_thread;
  const std::string connect = flags.GetString("connect");
  if (connect.empty()) {
    server::AuditServerOptions options;
    options.port = 0;
    options.num_shards = flags.GetInt("shards");
    options.num_reactors = flags.GetInt("reactors");
    options.queue_capacity =
        static_cast<size_t>(flags.GetInt("queue_capacity"));
    options.max_batch = static_cast<size_t>(flags.GetInt("batch"));
    options.service.budgets = flags.GetDoubleList("budgets");
    options.service.solver_options.ishm.step_size = flags.GetDouble("eps");
    options.service.warm_start_max_drift = flags.GetDouble("warm_max_drift");
    // Inline engines: tenant count is unbounded, per-tenant threads are not.
    options.service.num_threads = -1;
    local_server = std::make_unique<server::AuditServer>(
        core::GameInstance(*instance), options);
    if (util::Status started = local_server->Start(); !started.ok()) {
      std::cerr << started << "\n";
      return 1;
    }
    targets.push_back(Target{"127.0.0.1", local_server->port()});
    server_thread = std::thread([&local_server] {
      if (util::Status run = local_server->Run(); !run.ok()) {
        std::cerr << "in-process server: " << run << "\n";
      }
    });
  } else {
    std::string entry;
    std::stringstream list(connect);
    while (std::getline(list, entry, ',')) {
      if (entry.empty()) continue;
      const size_t colon = entry.rfind(':');
      if (colon == std::string::npos) {
        std::cerr << "--connect entries must be host:port\n";
        return 1;
      }
      auto port = util::ParseFullInt(entry.substr(colon + 1));
      if (!port.ok() || *port < 1 || *port > 65535) {
        std::cerr << "--connect entry has an invalid port: " << entry << "\n";
        return 1;
      }
      targets.push_back(
          Target{entry.substr(0, colon), static_cast<uint16_t>(*port)});
    }
    if (targets.empty()) {
      std::cerr << "--connect must name at least one host:port\n";
      return 1;
    }
  }

  const int tenants = std::max(1, flags.GetInt("tenants"));
  const int connections =
      std::min(std::max(1, flags.GetInt("connections")), tenants);
  // Round-robin tenant partition: connection c drives tenants c, c+C, ...
  std::vector<std::vector<int>> partition(
      static_cast<size_t>(connections));
  for (int t = 0; t < tenants; ++t) {
    partition[static_cast<size_t>(t % connections)].push_back(t);
  }

  std::vector<WorkerResult> results(static_cast<size_t>(connections));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(connections));
  util::Timer wall;
  for (int c = 0; c < connections; ++c) {
    const Target& target =
        targets[static_cast<size_t>(c) % targets.size()];
    workers.emplace_back(RunConnection, std::cref(partition[c]),
                         std::cref(baseline), std::cref(config),
                         std::cref(target), std::ref(results[c]));
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_seconds = wall.ElapsedSeconds();

  // One stats round trip for the server-side view (queue depths, batches,
  // per-shard tenancy) before tearing anything down.
  std::string server_stats;
  if (auto client = net::FrameClient::Connect(targets[0].host,
                                              targets[0].port, 2000);
      client.ok()) {
    (void)client->SetReceiveTimeout(5000);
    if (auto reply = client->Call(server::MakeStatsRequest(0)); reply.ok()) {
      if (auto doc = util::JsonValue::Parse(*reply); doc.ok()) {
        server_stats = doc->Dump(2);
      }
    }
  }

  if (local_server != nullptr) {
    local_server->RequestStop();
    server_thread.join();
  }

  WorkerResult total;
  std::vector<double> latencies;
  for (WorkerResult& r : results) {
    total.requests += r.requests;
    total.ok += r.ok;
    total.request_errors += r.request_errors;
    total.transport_failures += r.transport_failures;
    total.overloaded_retries += r.overloaded_retries;
    total.gave_up_overloaded += r.gave_up_overloaded;
    total.backend_down_retries += r.backend_down_retries;
    total.gave_up_backend_down += r.gave_up_backend_down;
    total.reconnects += r.reconnects;
    total.order_violations += r.order_violations;
    total.unmatched_responses += r.unmatched_responses;
    latencies.insert(latencies.end(), r.latency_seconds.begin(),
                     r.latency_seconds.end());
    for (std::string& sample : r.error_samples) {
      total.SampleError(std::move(sample));
    }
  }
  const int64_t answered = total.requests - total.transport_failures;
  const double answered_ratio =
      total.requests == 0
          ? 0.0
          : static_cast<double>(answered) / static_cast<double>(total.requests);
  std::sort(latencies.begin(), latencies.end());
  const double p50 = util::NearestRankPercentileSorted(latencies, 0.50);
  const double p90 = util::NearestRankPercentileSorted(latencies, 0.90);
  const double p99 = util::NearestRankPercentileSorted(latencies, 0.99);
  const double worst = latencies.empty() ? 0.0 : latencies.back();
  const double throughput =
      wall_seconds > 0.0
          ? static_cast<double>(total.requests) / wall_seconds
          : 0.0;
  const double min_throughput = flags.GetDouble("min_throughput");
  const bool floor_met =
      min_throughput <= 0.0 || throughput >= min_throughput;

  std::cerr << "loadgen: " << tenants << " tenants x " << config.cycles
            << " cycles (" << config.solves_per_cycle
            << " solves/cycle) over " << connections
            << " connections (window " << config.window << ", " << encoding
            << ") -> " << total.requests << " requests in " << wall_seconds
            << "s (" << throughput << " req/s)\n"
            << "  ok " << total.ok << ", errors " << total.request_errors
            << ", unanswered " << total.transport_failures
            << ", unmatched " << total.unmatched_responses
            << ", overloaded retries " << total.overloaded_retries
            << " (gave up " << total.gave_up_overloaded << ")"
            << ", backend_down retries " << total.backend_down_retries
            << " (gave up " << total.gave_up_backend_down << ")"
            << ", reconnects " << total.reconnects
            << ", order violations " << total.order_violations << "\n"
            << "  latency: p50 " << p50 << "s p90 " << p90 << "s p99 " << p99
            << "s max " << worst << "s\n";
  if (min_throughput > 0.0) {
    std::cerr << "  throughput floor " << min_throughput
              << " req/s: " << (floor_met ? "met" : "NOT MET") << "\n";
  }
  for (const std::string& sample : total.error_samples) {
    std::cerr << "  error: " << sample << "\n";
  }
  if (!server_stats.empty()) {
    std::cerr << "server stats:\n" << server_stats << "\n";
  }

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    util::JsonValue::Object summary;
    summary["bench"] = "server_loadgen";
    summary["tenants"] = tenants;
    summary["cycles"] = config.cycles;
    summary["solves_per_cycle"] = config.solves_per_cycle;
    summary["connections"] = connections;
    summary["window"] = config.window;
    summary["encoding"] = encoding;
    summary["shards"] = flags.GetInt("shards");
    summary["scenario"] = flags.GetString("scenario");
    summary["stream"] = flags.GetString("stream");
    summary["requests_total"] = static_cast<double>(total.requests);
    summary["responses_ok"] = static_cast<double>(total.ok);
    summary["request_errors"] = static_cast<double>(total.request_errors);
    summary["unanswered_requests"] =
        static_cast<double>(total.transport_failures);
    summary["unmatched_responses"] =
        static_cast<double>(total.unmatched_responses);
    summary["overloaded_retries"] =
        static_cast<double>(total.overloaded_retries);
    summary["gave_up_overloaded"] =
        static_cast<double>(total.gave_up_overloaded);
    summary["backend_down_retries"] =
        static_cast<double>(total.backend_down_retries);
    summary["gave_up_backend_down"] =
        static_cast<double>(total.gave_up_backend_down);
    summary["reconnects"] = static_cast<double>(total.reconnects);
    summary["order_violations"] =
        static_cast<double>(total.order_violations);
    // The gated contract: booleans must stay true, the ratio must not
    // fall (tools/bench_compare.py's classification).
    summary["zero_protocol_errors"] =
        total.request_errors == 0 && total.unmatched_responses == 0;
    summary["order_preserved"] = total.order_violations == 0;
    summary["all_requests_answered"] = total.transport_failures == 0;
    summary["throughput_floor_met"] = floor_met;
    summary["answered_ratio"] = answered_ratio;
    // Timing fields ride along ungated (machine-dependent).
    summary["wall_seconds"] = wall_seconds;
    summary["throughput_rps"] = throughput;
    summary["latency_seconds_p50"] = p50;
    summary["latency_seconds_p90"] = p90;
    summary["latency_seconds_p99"] = p99;
    summary["latency_seconds_max"] = worst;
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << util::JsonValue(std::move(summary)).Dump(2) << "\n";
  }

  const bool clean = total.request_errors == 0 &&
                     total.transport_failures == 0 &&
                     total.order_violations == 0 &&
                     total.unmatched_responses == 0 && floor_met;
  return clean ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
