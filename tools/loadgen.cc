// loadgen: socket-level load generator for the audit server. Spawns one
// connection per tenant, replays a scenario alert stream (src/scenario/)
// as interleaved `ingest` + `solve_cycle` requests, retries `overloaded`
// backpressure responses with a small backoff, and reports throughput and
// request-latency percentiles. Verifies the serving contract as it goes:
// every request must be answered (policy, `overloaded`, or an error
// frame), and each tenant's solve responses must carry strictly
// increasing cycle numbers (the per-tenant ordering the shard routing
// guarantees). Exits non-zero when either check fails.
//
// With --connect it drives an external audit_server (the CI smoke job's
// two-process mode); without it, it starts an in-process server on an
// ephemeral port — the self-contained mode ctest runs — and shuts it down
// gracefully at the end.
//
//   loadgen --tenants=4 --cycles=25 --shards=4 --json=BENCH_server.json
//   loadgen --connect=127.0.0.1:7353 --tenants=8 --cycles=50
#include <signal.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/client.h"
#include "scenario/generator.h"
#include "scenario/stream.h"
#include "server/audit_server.h"
#include "server/protocol.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/percentile.h"
#include "util/timer.h"

namespace {

using namespace auditgame;  // NOLINT

struct WorkerConfig {
  std::string host;
  uint16_t port = 0;
  int cycles = 0;
  int retries = 0;
  int retry_backoff_ms = 0;
  int timeout_ms = 0;
  scenario::StreamSpec stream_spec;
};

struct WorkerResult {
  int64_t requests = 0;
  int64_t ok = 0;
  int64_t request_errors = 0;
  /// Requests that never got a response frame (timeout, dropped
  /// connection) — the "dropped in silence" class that must stay zero.
  int64_t transport_failures = 0;
  int64_t overloaded_retries = 0;
  /// Requests still `overloaded` after every retry (answered, but the
  /// cycle was abandoned).
  int64_t gave_up_overloaded = 0;
  int64_t order_violations = 0;
  std::vector<double> latency_seconds;
  std::vector<std::string> error_samples;
};

/// One request to a terminal response: retries `overloaded` with backoff,
/// records the user-perceived latency (including retries). Returns the
/// terminal response document, or an error status on a transport failure.
util::StatusOr<util::JsonValue> RunOp(net::FrameClient& client,
                                      const std::string& payload,
                                      const WorkerConfig& config,
                                      WorkerResult& result) {
  util::Timer timer;
  for (int attempt = 0; attempt <= config.retries; ++attempt) {
    ++result.requests;
    auto response = client.Call(payload);
    if (!response.ok()) {
      ++result.transport_failures;
      return response.status();
    }
    auto doc = util::JsonValue::Parse(*response);
    if (!doc.ok()) {
      ++result.request_errors;
      return doc.status();
    }
    auto status = doc->GetString("status");
    if (!status.ok()) {
      ++result.request_errors;
      return status.status();
    }
    if (*status == "overloaded" && attempt < config.retries) {
      ++result.overloaded_retries;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config.retry_backoff_ms));
      continue;
    }
    result.latency_seconds.push_back(timer.ElapsedSeconds());
    if (*status == "overloaded") ++result.gave_up_overloaded;
    return *std::move(doc);
  }
  return util::InternalError("unreachable retry loop exit");
}

void RunTenant(int tenant_index,
               const std::vector<prob::CountDistribution>& baseline,
               const WorkerConfig& config, WorkerResult& result) {
  const std::string tenant = "tenant-" + std::to_string(tenant_index);
  auto client = net::FrameClient::Connect(config.host, config.port,
                                          /*connect_wait_ms=*/10000);
  if (!client.ok()) {
    // The whole replay is unanswered: count every request it would have
    // sent as a transport failure rather than silently shrinking the run.
    result.requests = result.transport_failures =
        static_cast<int64_t>(config.cycles) * 2;
    result.error_samples.push_back(client.status().ToString());
    return;
  }
  if (config.timeout_ms > 0) {
    (void)client->SetReceiveTimeout(config.timeout_ms);
  }

  scenario::StreamSpec spec = config.stream_spec;
  spec.seed += static_cast<uint64_t>(tenant_index);  // per-tenant stream
  scenario::ScenarioStream stream(baseline, spec);

  // When a transport failure aborts the tenant mid-replay, the requests
  // it would still have sent are counted as unanswered (mirroring the
  // connect-failure path above) so the report never shrinks the run.
  const int64_t planned = static_cast<int64_t>(config.cycles) * 2;
  int64_t ops_done = 0;
  int64_t ops_skipped = 0;  // solves not sent after a rejected ingest
  const auto abort_tenant = [&] {
    // -1: the op that just failed was already counted by RunOp.
    const int64_t remaining = planned - ops_done - ops_skipped - 1;
    if (remaining > 0) {
      result.requests += remaining;
      result.transport_failures += remaining;
    }
  };

  int64_t next_id = static_cast<int64_t>(tenant_index) * 1000000;
  int64_t last_cycle = 0;
  for (int cycle = 1; cycle <= config.cycles; ++cycle) {
    auto dists = stream.Next();
    if (!dists.ok()) {
      result.error_samples.push_back(dists.status().ToString());
      ++result.request_errors;
      return;
    }

    auto ingest = RunOp(
        *client, server::MakeIngestRequest(++next_id, tenant, *dists),
        config, result);
    if (!ingest.ok()) {
      result.error_samples.push_back(ingest.status().ToString());
      abort_tenant();  // transport failure: stop this tenant
      return;
    }
    ++ops_done;
    if (auto status = ingest->GetString("status");
        !status.ok() || *status != "ok") {
      if (!status.ok() || *status == "error") {
        ++result.request_errors;
        if (const util::JsonValue* m = ingest->Find("message");
            m != nullptr && m->is_string()) {
          result.error_samples.push_back(m->as_string());
        }
      }
      // Rejected or gave-up-overloaded ingest: solving now would run the
      // cycle on stale distributions — skip it and keep the pairing
      // honest.
      ++ops_skipped;
      continue;
    }

    auto solve = RunOp(
        *client, server::MakeSolveCycleRequest(++next_id, tenant), config,
        result);
    if (!solve.ok()) {
      result.error_samples.push_back(solve.status().ToString());
      abort_tenant();
      return;
    }
    ++ops_done;
    auto status = solve->GetString("status");
    if (!status.ok() || *status == "error") {
      ++result.request_errors;
      if (const util::JsonValue* m = solve->Find("message");
          m != nullptr && m->is_string()) {
        result.error_samples.push_back(m->as_string());
      }
      continue;
    }
    if (*status != "ok") continue;  // gave up overloaded: no cycle ran
    ++result.ok;
    auto cycle_number = solve->GetNumber("cycle");
    if (!cycle_number.ok() || *cycle_number <= static_cast<double>(last_cycle)) {
      ++result.order_violations;
    } else {
      last_cycle = static_cast<int64_t>(*cycle_number);
    }
  }
}

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("connect", "",
               "host:port of a running audit_server (empty = start one "
               "in-process on an ephemeral port)");
  flags.Define("tenants", "4", "concurrent tenants (one connection each)");
  flags.Define("cycles", "25", "audit cycles per tenant (2 requests each)");
  flags.Define("retries", "50", "max retries per overloaded response");
  flags.Define("retry_backoff_ms", "5", "sleep between overloaded retries");
  flags.Define("timeout_ms", "30000", "per-response receive timeout");
  // Scenario flags must match the server's so ingest type counts line up.
  scenario::DefineScenarioFlags(flags, /*default_scenario=*/"uniform",
                                /*default_types=*/"5");
  flags.Define("stream", "jitter",
               "alert-stream evolution: jitter, walk, seasonal");
  flags.Define("drift", "0.05", "per-cycle drift amplitude");
  flags.Define("revisit", "5",
               "every k-th cycle replays the baseline exactly (0 = never)");
  flags.Define("season", "7", "cycles per seasonal oscillation");
  flags.Define("stream_seed", "1",
               "stream RNG seed (tenant i uses stream_seed + i)");
  flags.Define("json", "", "BENCH_server.json output path (empty = none)");
  // In-process-server configuration (with --connect only the reported
  // `shards` label is taken from here — pass the external server's real
  // value so the BENCH report describes the right topology).
  flags.Define("shards", "4",
               "in-process server: shard worker threads (with --connect: "
               "label-only, set to the server's value)");
  flags.Define("queue_capacity", "128",
               "in-process server: per-shard queue bound");
  flags.Define("batch", "16", "in-process server: max batch per wakeup");
  flags.Define("budgets", "6,10", "in-process server: budgets per cycle");
  flags.Define("eps", "0.25", "in-process server: ISHM step size");
  flags.Define("warm_max_drift", "0.25",
               "in-process server: warm-start drift threshold");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpString(argv[0]);
    return 0;
  }
  signal(SIGPIPE, SIG_IGN);

  auto spec = scenario::SpecFromFlags(flags);
  if (!spec.ok()) {
    std::cerr << spec.status() << "\n";
    return 1;
  }
  auto instance = scenario::Generate(*spec);
  if (!instance.ok()) {
    std::cerr << instance.status() << "\n";
    return 1;
  }
  const std::vector<prob::CountDistribution> baseline =
      instance->alert_distributions;

  auto stream_kind = scenario::StreamKindFromName(flags.GetString("stream"));
  if (!stream_kind.ok()) {
    std::cerr << stream_kind.status() << "\n";
    return 1;
  }

  WorkerConfig config;
  config.cycles = flags.GetInt("cycles");
  config.retries = flags.GetInt("retries");
  config.retry_backoff_ms = flags.GetInt("retry_backoff_ms");
  config.timeout_ms = flags.GetInt("timeout_ms");
  config.stream_spec.kind = *stream_kind;
  config.stream_spec.drift_amplitude = flags.GetDouble("drift");
  config.stream_spec.revisit_period = flags.GetInt("revisit");
  config.stream_spec.season_period = flags.GetInt("season");
  config.stream_spec.seed = static_cast<uint64_t>(flags.GetInt("stream_seed"));

  // Target: external server, or an in-process one on an ephemeral port.
  std::unique_ptr<server::AuditServer> local_server;
  std::thread server_thread;
  const std::string connect = flags.GetString("connect");
  if (connect.empty()) {
    server::AuditServerOptions options;
    options.port = 0;
    options.num_shards = flags.GetInt("shards");
    options.queue_capacity =
        static_cast<size_t>(flags.GetInt("queue_capacity"));
    options.max_batch = static_cast<size_t>(flags.GetInt("batch"));
    options.service.budgets = flags.GetDoubleList("budgets");
    options.service.solver_options.ishm.step_size = flags.GetDouble("eps");
    options.service.warm_start_max_drift = flags.GetDouble("warm_max_drift");
    options.service.num_threads = 1;
    local_server = std::make_unique<server::AuditServer>(
        core::GameInstance(*instance), options);
    if (util::Status started = local_server->Start(); !started.ok()) {
      std::cerr << started << "\n";
      return 1;
    }
    config.host = "127.0.0.1";
    config.port = local_server->port();
    server_thread = std::thread([&local_server] {
      if (util::Status run = local_server->Run(); !run.ok()) {
        std::cerr << "in-process server: " << run << "\n";
      }
    });
  } else {
    const size_t colon = connect.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "--connect must be host:port\n";
      return 1;
    }
    config.host = connect.substr(0, colon);
    auto port = util::ParseFullInt(connect.substr(colon + 1));
    if (!port.ok() || *port < 1 || *port > 65535) {
      std::cerr << "--connect has an invalid port\n";
      return 1;
    }
    config.port = static_cast<uint16_t>(*port);
  }

  const int tenants = flags.GetInt("tenants");
  std::vector<WorkerResult> results(static_cast<size_t>(tenants));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(tenants));
  util::Timer wall;
  for (int i = 0; i < tenants; ++i) {
    workers.emplace_back(RunTenant, i, std::cref(baseline),
                         std::cref(config), std::ref(results[i]));
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_seconds = wall.ElapsedSeconds();

  // One stats round trip for the server-side view (queue depths, batches,
  // per-shard tenancy) before tearing anything down.
  std::string server_stats;
  if (auto client =
          net::FrameClient::Connect(config.host, config.port, 2000);
      client.ok()) {
    (void)client->SetReceiveTimeout(5000);
    if (auto reply = client->Call(server::MakeStatsRequest(0)); reply.ok()) {
      if (auto doc = util::JsonValue::Parse(*reply); doc.ok()) {
        server_stats = doc->Dump(2);
      }
    }
  }

  if (local_server != nullptr) {
    local_server->RequestStop();
    server_thread.join();
  }

  WorkerResult total;
  std::vector<double> latencies;
  for (const WorkerResult& r : results) {
    total.requests += r.requests;
    total.ok += r.ok;
    total.request_errors += r.request_errors;
    total.transport_failures += r.transport_failures;
    total.overloaded_retries += r.overloaded_retries;
    total.gave_up_overloaded += r.gave_up_overloaded;
    total.order_violations += r.order_violations;
    latencies.insert(latencies.end(), r.latency_seconds.begin(),
                     r.latency_seconds.end());
    for (const std::string& sample : r.error_samples) {
      if (total.error_samples.size() < 5) {
        total.error_samples.push_back(sample);
      }
    }
  }
  const int64_t answered = total.requests - total.transport_failures;
  const double answered_ratio =
      total.requests == 0
          ? 0.0
          : static_cast<double>(answered) / static_cast<double>(total.requests);
  std::sort(latencies.begin(), latencies.end());
  const double p50 = util::NearestRankPercentileSorted(latencies, 0.50);
  const double p90 = util::NearestRankPercentileSorted(latencies, 0.90);
  const double p99 = util::NearestRankPercentileSorted(latencies, 0.99);
  const double worst = latencies.empty() ? 0.0 : latencies.back();
  const double throughput =
      wall_seconds > 0.0
          ? static_cast<double>(total.requests) / wall_seconds
          : 0.0;

  std::cerr << "loadgen: " << tenants << " tenants x " << config.cycles
            << " cycles -> " << total.requests << " requests in "
            << wall_seconds << "s (" << throughput << " req/s)\n"
            << "  ok " << total.ok << ", errors " << total.request_errors
            << ", unanswered " << total.transport_failures
            << ", overloaded retries " << total.overloaded_retries
            << " (gave up " << total.gave_up_overloaded << ")"
            << ", order violations " << total.order_violations << "\n"
            << "  latency: p50 " << p50 << "s p90 " << p90 << "s p99 " << p99
            << "s max " << worst << "s\n";
  for (const std::string& sample : total.error_samples) {
    std::cerr << "  error: " << sample << "\n";
  }
  if (!server_stats.empty()) {
    std::cerr << "server stats:\n" << server_stats << "\n";
  }

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    util::JsonValue::Object summary;
    summary["bench"] = "server_loadgen";
    summary["tenants"] = tenants;
    summary["cycles"] = config.cycles;
    summary["shards"] = flags.GetInt("shards");
    summary["scenario"] = flags.GetString("scenario");
    summary["stream"] = flags.GetString("stream");
    summary["requests_total"] = static_cast<double>(total.requests);
    summary["responses_ok"] = static_cast<double>(total.ok);
    summary["request_errors"] = static_cast<double>(total.request_errors);
    summary["unanswered_requests"] =
        static_cast<double>(total.transport_failures);
    summary["overloaded_retries"] =
        static_cast<double>(total.overloaded_retries);
    summary["gave_up_overloaded"] =
        static_cast<double>(total.gave_up_overloaded);
    summary["order_violations"] =
        static_cast<double>(total.order_violations);
    // The gated contract: booleans must stay true, the ratio must not
    // fall (tools/bench_compare.py's classification).
    summary["zero_protocol_errors"] = total.request_errors == 0;
    summary["order_preserved"] = total.order_violations == 0;
    summary["all_requests_answered"] = total.transport_failures == 0;
    summary["answered_ratio"] = answered_ratio;
    // Timing fields ride along ungated (machine-dependent).
    summary["wall_seconds"] = wall_seconds;
    summary["throughput_rps"] = throughput;
    summary["latency_seconds_p50"] = p50;
    summary["latency_seconds_p90"] = p90;
    summary["latency_seconds_p99"] = p99;
    summary["latency_seconds_max"] = worst;
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << util::JsonValue(std::move(summary)).Dump(2) << "\n";
  }

  const bool clean = total.request_errors == 0 &&
                     total.transport_failures == 0 &&
                     total.order_violations == 0;
  return clean ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
