#!/usr/bin/env python3
"""Diff a smoke BENCH_*.json report against its committed baseline.

CI runs the smoke benches every build and this script gates the result:
it walks baseline and current reports in parallel and fails (exit 1) on a
regression beyond --threshold (default 25%) in any *gated* metric.

Metrics are classified by key name:

* booleans (``backends_agree_1e6``, ``serial_parallel_identical`` ...) —
  a true in the baseline must stay true;
* ``*ratio*`` / ``*warm_lp_solves*`` — deterministic counters where
  higher is better, gated at ``current < baseline * (1 - threshold)``;
* ``*iterations*`` / ``*lp_solves*`` / ``*gap*`` — deterministic, lower
  is better, gated at ``current > baseline * (1 + threshold)`` (gaps get
  a 1e-9 absolute floor so exact-zero baselines don't trip on rounding
  noise);
* ``*alloc*`` / ``*heap_block*`` — allocation counters from the arena
  refactor, lower is better; exact-zero baselines get a small absolute
  floor (an occasional one-off allocation in a thousand solves is not a
  regression);
* ``*seconds*`` / ``*speedup*`` — wall-clock measurements: machine- and
  noise-dependent (sub-millisecond cases swing far more than 25% between
  identical runs), so they are skipped unless --gate-timing is passed.
  The deterministic counters above are the portable perf trajectory; the
  timing fields ride along in the archived artifacts;
* everything else (objectives, sweep configuration) is context, not a
  gate.

``--require KEY`` (repeatable, dotted path for nesting) insists the key
exists in *both* reports: the walk above only gates keys present in the
baseline, so a metric that silently vanishes from a regenerated baseline
— or was never produced because the drill that feeds it didn't run —
would otherwise pass unchecked. The cluster smoke uses it to make
``warm_hit_after_failover`` and ``backend_failover_observed`` mandatory,
not merely non-regressing.

Exit codes: 0 ok, 1 regression, 2 usage / unreadable report.
"""

import argparse
import json
import sys

GAP_ABSOLUTE_FLOOR = 1e-9
ALLOC_ABSOLUTE_FLOOR = 0.5


def classify(key):
    """Returns one of 'higher', 'lower', 'timing', None."""
    k = key.lower()
    if "seconds" in k or "speedup" in k:
        return "timing"
    # Match order is load-bearing twice over: "iterations" itself contains
    # the substring "ratio", and "warm_lp_solves" contains "lp_solves".
    if "warm_lp_solves" in k:
        return "higher"
    if "alloc" in k or "heap_block" in k:
        return "lower"
    if "iterations" in k or "lp_solves" in k or "gap" in k:
        return "lower"
    if "ratio" in k:
        return "higher"
    return None


class Comparison:
    def __init__(self, threshold, gate_timing):
        self.threshold = threshold
        self.gate_timing = gate_timing
        self.failures = []
        self.checked = 0

    def fail(self, path, message):
        self.failures.append(f"{path}: {message}")

    def compare_metric(self, path, key, base, cur):
        if isinstance(base, bool) or isinstance(cur, bool):
            self.checked += 1
            if base is True and cur is not True:
                self.fail(path, f"flipped to {cur!r} (baseline true)")
            return
        if not isinstance(base, (int, float)):
            return
        if not isinstance(cur, (int, float)):
            # A numeric baseline metric that is no longer numeric is a
            # corrupted report, not a pass.
            self.fail(path, f"baseline is numeric but current is {cur!r}")
            return
        kind = classify(key)
        if kind == "timing":
            if not self.gate_timing:
                return
            kind = "higher" if "speedup" in key.lower() else "lower"
        if kind is None:
            return
        self.checked += 1
        if kind == "higher":
            floor = base * (1.0 - self.threshold)
            if cur < floor:
                self.fail(
                    path,
                    f"{cur:.6g} fell below {floor:.6g} "
                    f"(baseline {base:.6g}, -{self.threshold:.0%} allowed)",
                )
        else:  # lower is better
            ceiling = base * (1.0 + self.threshold)
            if "gap" in key.lower():
                ceiling = max(ceiling, GAP_ABSOLUTE_FLOOR)
            if "alloc" in key.lower() or "heap_block" in key.lower():
                ceiling = max(ceiling, ALLOC_ABSOLUTE_FLOOR)
            if cur > ceiling:
                self.fail(
                    path,
                    f"{cur:.6g} exceeds {ceiling:.6g} "
                    f"(baseline {base:.6g}, +{self.threshold:.0%} allowed)",
                )

    def walk(self, path, base, cur):
        if isinstance(base, dict) and isinstance(cur, dict):
            for key in base:
                if key not in cur:
                    self.fail(f"{path}.{key}", "missing from current report")
                    continue
                child = f"{path}.{key}" if path else key
                if isinstance(base[key], (dict, list)):
                    self.walk(child, base[key], cur[key])
                else:
                    self.compare_metric(child, key, base[key], cur[key])
        elif isinstance(base, list) and isinstance(cur, list):
            if len(base) != len(cur):
                self.fail(path, f"case count {len(base)} -> {len(cur)}")
            for i, (b, c) in enumerate(zip(base, cur)):
                self.walk(f"{path}[{i}]", b, c)
        elif isinstance(base, (dict, list)):
            # A structural node degraded to a scalar/null: everything under
            # it silently disappears from the gate unless flagged here.
            self.fail(path, f"baseline is {type(base).__name__} but current "
                            f"is {cur!r}")


def lookup(report, dotted):
    """Resolves a dotted path ('router.failovers') in nested dicts."""
    node = report
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return False, None
        node = node[part]
    return True, node


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(
        description="Fail when a smoke BENCH report regresses vs its baseline."
    )
    parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    parser.add_argument("current", help="freshly generated BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed relative regression (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--gate-timing",
        action="store_true",
        help="also gate *_seconds / *speedup* metrics (only meaningful for "
        "long-running cases on one quiet machine)",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="KEY",
        help="dotted key that must exist in both reports (repeatable); a "
        "missing required key fails the gate even if nothing regressed",
    )
    args = parser.parse_args()
    if not 0 <= args.threshold < 1:
        print("bench_compare: --threshold must be in [0, 1)", file=sys.stderr)
        sys.exit(2)

    baseline = load(args.baseline)
    current = load(args.current)
    comparison = Comparison(args.threshold, args.gate_timing)
    comparison.walk("", baseline, current)
    for key in args.require:
        for label, report in (("baseline", baseline), ("current", current)):
            found, _ = lookup(report, key)
            if not found:
                comparison.fail(key, f"required key missing from {label}")
        comparison.checked += 1

    name = baseline.get("bench", args.baseline) if isinstance(baseline, dict) else args.baseline
    if comparison.failures:
        print(f"bench_compare: {name}: {len(comparison.failures)} regression(s) "
              f"({comparison.checked} metrics checked):")
        for failure in comparison.failures:
            print(f"  REGRESSION {failure}")
        sys.exit(1)
    print(f"bench_compare: {name}: OK "
          f"({comparison.checked} metrics within {args.threshold:.0%})")


if __name__ == "__main__":
    main()
