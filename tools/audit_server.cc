// audit_server: the sharded multi-tenant audit server as a standalone
// process. Serves the wire protocol of server/protocol.h — length-prefixed
// frames carrying JSON (`ingest` / `solve_cycle` / `stats`) or the compact
// binary encoding of the hot verbs (server/binary_codec.h) — over TCP.
// Connections are accepted on one listener thread and pinned to one of
// --reactors epoll event loops; requests route by tenant-id hash to one of
// --shards worker threads, each owning a single-writer AuditService per
// tenant. Responses may complete out of submission order across tenants
// (pipelining by correlation id); per-tenant order is structural.
// Backpressure is explicit: when a shard's bounded queue is full the
// request is answered `overloaded`, never buffered without limit.
//
// Every tenant's game starts as a copy of the configured scenario instance
// and diverges through `ingest`. SIGINT/SIGTERM trigger a graceful drain:
// accepted requests finish, their responses flush, then the process exits
// 0 and prints a final per-shard summary to stderr.
//
//   audit_server --port=7353 --shards=4 --scenario=uniform --types=5
//   audit_server --port=0    # ephemeral; the bound port is printed
#include <signal.h>

#include <algorithm>
#include <iostream>
#include <string>
#include <utility>

#include "scenario/generator.h"
#include "server/audit_server.h"
#include "util/flags.h"
#include "util/json.h"

namespace {

using namespace auditgame;  // NOLINT

server::AuditServer* g_server = nullptr;

void HandleStopSignal(int /*signum*/) {
  if (g_server != nullptr) g_server->RequestStop();
}

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("host", "127.0.0.1", "numeric IPv4 bind address");
  flags.Define("port", "7353", "TCP port (0 = ephemeral, printed on start)");
  flags.Define("shards", "4", "shard worker threads");
  flags.Define("reactors", "1",
               "IO event-loop threads (each connection is pinned to one)");
  flags.Define("poller", "default",
               "event backend: default (epoll on Linux), epoll, poll");
  flags.Define("queue_capacity", "128",
               "per-shard request-queue bound (full queue => overloaded)");
  flags.Define("batch", "16", "max requests drained per shard wakeup");
  flags.Define("max_frame_kb", "1024", "frame payload cap in KiB");
  flags.Define("idle_timeout_ms", "300000",
               "close connections idle this long with nothing in flight "
               "(0 = never)");
  flags.Define("max_connections", "0",
               "live-connection cap; excess accepts are closed immediately "
               "(0 = unlimited)");
  flags.Define("stats_refresh_ms", "250",
               "stats-snapshot refresh period (the `stats` verb reads the "
               "snapshot, never the live shards)");
  flags.Define("drain_timeout_ms", "10000",
               "graceful-stop budget for draining shards and flushing");
  flags.Define("data_dir", "",
               "durability root: per-shard snapshots + ingest WAL under "
               "<data_dir>/shard-<i>/; startup recovers from it (empty = "
               "no durability)");
  flags.Define("wal_sync", "batch",
               "WAL fsync policy: none (page cache only), batch (one "
               "fdatasync per shard micro-batch — the group commit), "
               "always (per record)");
  flags.Define("snapshot_interval", "30",
               "seconds between per-shard background snapshots (0 = never "
               "by time)");
  flags.Define("snapshot_every", "4096",
               "WAL records between per-shard snapshots (0 = never by "
               "count)");
  flags.Define("wal_segment_mb", "64", "WAL segment rotation size in MiB");
  flags.Define("snapshot_on_drain", "1",
               "take a final snapshot on clean drain (0 forces the next "
               "start through WAL replay)");
  scenario::DefineScenarioFlags(flags, /*default_scenario=*/"uniform",
                                /*default_types=*/"5");
  flags.Define("budgets", "6,10", "budgets served per solve_cycle");
  flags.Define("eps", "0.25", "ISHM step size");
  flags.Define("warm_max_drift", "0.25",
               "drift threshold above which re-solves are cold");
  flags.Define("threads", "-1",
               "engine workers per tenant service; -1 = inline mode (solve "
               "on the shard thread, no per-tenant pool — the only mode "
               "that scales to tens of thousands of tenants)");
  flags.Define("pricing_threads", "1", "CGGS pricing threads per solve");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpString(argv[0]);
    return 0;
  }

  auto spec = scenario::SpecFromFlags(flags);
  if (!spec.ok()) {
    std::cerr << spec.status() << "\n";
    return 1;
  }
  auto instance = scenario::Generate(*spec);
  if (!instance.ok()) {
    std::cerr << instance.status() << "\n";
    return 1;
  }

  const std::string poller = flags.GetString("poller");
  server::AuditServerOptions options;
  options.host = flags.GetString("host");
  options.port = static_cast<uint16_t>(flags.GetInt("port"));
  options.num_shards = flags.GetInt("shards");
  options.num_reactors = flags.GetInt("reactors");
  if (poller == "default") {
    options.poller_backend = net::PollerBackend::kDefault;
  } else if (poller == "epoll") {
    options.poller_backend = net::PollerBackend::kEpoll;
  } else if (poller == "poll") {
    options.poller_backend = net::PollerBackend::kPoll;
  } else {
    std::cerr << "--poller must be default, epoll, or poll\n";
    return 1;
  }
  options.idle_timeout_ms = flags.GetInt("idle_timeout_ms");
  options.max_connections =
      static_cast<size_t>(std::max(0, flags.GetInt("max_connections")));
  options.stats_refresh_ms = flags.GetInt("stats_refresh_ms");
  options.queue_capacity = static_cast<size_t>(flags.GetInt("queue_capacity"));
  options.max_batch = static_cast<size_t>(flags.GetInt("batch"));
  options.max_frame_payload =
      static_cast<size_t>(flags.GetInt("max_frame_kb")) * 1024;
  options.drain_timeout_ms = flags.GetInt("drain_timeout_ms");
  options.service.budgets = flags.GetDoubleList("budgets");
  options.service.solver_options.ishm.step_size = flags.GetDouble("eps");
  options.service.solver_options.cggs.pricing_threads =
      flags.GetInt("pricing_threads");
  options.service.warm_start_max_drift = flags.GetDouble("warm_max_drift");
  options.service.num_threads = flags.GetInt("threads");
  if (options.service.budgets.empty()) {
    std::cerr << "--budgets must name at least one budget\n";
    return 1;
  }
  options.durability.data_dir = flags.GetString("data_dir");
  if (auto sync = server::WalSyncFromName(flags.GetString("wal_sync"));
      sync.ok()) {
    options.durability.wal_sync = *sync;
  } else {
    std::cerr << sync.status() << "\n";
    return 1;
  }
  options.durability.snapshot_interval_seconds =
      flags.GetDouble("snapshot_interval");
  options.durability.snapshot_every_records =
      static_cast<uint64_t>(std::max(0, flags.GetInt("snapshot_every")));
  options.durability.wal_segment_bytes =
      static_cast<uint64_t>(std::max(1, flags.GetInt("wal_segment_mb")))
      << 20;
  options.durability.snapshot_on_drain =
      flags.GetInt("snapshot_on_drain") != 0;

  server::AuditServer server(std::move(*instance), options);
  if (util::Status started = server.Start(); !started.ok()) {
    std::cerr << started << "\n";
    return 1;
  }

  // Graceful drain on SIGINT/SIGTERM; SIGPIPE is handled per-send
  // (MSG_NOSIGNAL) but ignored globally as a belt-and-braces.
  g_server = &server;
  struct sigaction action;
  action.sa_handler = HandleStopSignal;
  sigemptyset(&action.sa_mask);
  // SA_RESTART: the handler's wake-pipe write is what interrupts the
  // event loop; no blocking call needs to fail with EINTR for it.
  action.sa_flags = SA_RESTART;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  signal(SIGPIPE, SIG_IGN);

  std::cerr << "audit_server: listening on " << options.host << ":"
            << server.port() << " with " << options.num_shards << " shards, "
            << options.num_reactors << " reactors (queue capacity "
            << static_cast<int>(options.queue_capacity) << ", batch "
            << static_cast<int>(options.max_batch) << ")\n";
  if (options.durability.enabled()) {
    const auto body = server.StatsBody();
    uint64_t replayed = 0;
    double recovery_seconds = 0.0;
    if (auto it = body.find("shards"); it != body.end()) {
      for (const auto& shard : it->second.as_array()) {
        if (const util::JsonValue* p = shard.Find("persistence")) {
          replayed += static_cast<uint64_t>(
              p->Find("recovery_replayed")->as_number());
          recovery_seconds = std::max(
              recovery_seconds, p->Find("recovery_seconds")->as_number());
        }
      }
    }
    std::cerr << "audit_server: durable in " << options.durability.data_dir
              << " (wal_sync=" << server::WalSyncName(options.durability.wal_sync)
              << "); recovery replayed " << replayed << " WAL records in "
              << recovery_seconds << "s\n";
  }

  util::Status run = server.Run();
  g_server = nullptr;
  if (!run.ok()) {
    std::cerr << run << "\n";
    return 1;
  }
  std::cerr << "audit_server: drained; final stats:\n"
            << util::JsonValue(server.StatsBody()).Dump(2) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
