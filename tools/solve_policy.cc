// solve_policy: command-line front end to the audit-game solver.
//
// Reads a game instance from a JSON file (see core/game_io.h for the
// schema, or export_game for ready-made instances), solves the optimal
// auditing problem at the given budget, and writes the audit policy as
// JSON to stdout or a file.
//
//   solve_policy --game=game.json --budget=20 --eps=0.1 --out=policy.json
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/cggs.h"
#include "core/detection.h"
#include "core/game_io.h"
#include "core/ishm.h"
#include "util/flags.h"

namespace {

using namespace auditgame;  // NOLINT

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("game", "", "path to the game instance JSON (required)");
  flags.Define("budget", "10", "audit budget B");
  flags.Define("eps", "0.1", "ISHM step size");
  flags.Define("solver", "cggs", "LP evaluator: cggs | full");
  flags.Define("out", "", "output path for the policy JSON (default stdout)");
  flags.Define("mc_samples", "0",
               "use Monte Carlo detection with this many samples (0 = exact)");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested() || flags.GetString("game").empty()) {
    std::cout << flags.HelpString(argv[0]);
    return flags.help_requested() ? 0 : 1;
  }

  std::ifstream in(flags.GetString("game"));
  if (!in) {
    std::cerr << "cannot open " << flags.GetString("game") << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto game = core::ParseGame(buffer.str());
  if (!game.ok()) {
    std::cerr << game.status() << "\n";
    return 1;
  }

  auto compiled = core::Compile(*game);
  if (!compiled.ok()) {
    std::cerr << compiled.status() << "\n";
    return 1;
  }
  core::DetectionModel::Options detection_options;
  if (flags.GetInt("mc_samples") > 0) {
    detection_options.mode = core::DetectionModel::Mode::kMonteCarlo;
    detection_options.mc_samples = flags.GetInt("mc_samples");
  }
  auto detection = core::DetectionModel::Create(
      *game, flags.GetDouble("budget"), detection_options);
  if (!detection.ok()) {
    std::cerr << detection.status() << "\n";
    return 1;
  }

  core::ThresholdEvaluator evaluator;
  if (flags.GetString("solver") == "full") {
    evaluator = core::MakeFullLpEvaluator(*compiled, *detection);
  } else if (flags.GetString("solver") == "cggs") {
    evaluator = core::MakeCggsEvaluator(*compiled, *detection);
  } else {
    std::cerr << "unknown --solver: " << flags.GetString("solver") << "\n";
    return 1;
  }
  core::IshmOptions ishm_options;
  ishm_options.step_size = flags.GetDouble("eps");
  auto result = core::SolveIshm(*game, evaluator, ishm_options);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }

  std::cerr << "objective (expected auditor loss): " << result->objective
            << "\n"
            << "threshold vectors explored: " << result->stats.evaluations
            << " (" << result->stats.distinct_evaluations << " distinct)\n";
  const std::string policy_json = core::SerializePolicy(result->policy);
  if (flags.GetString("out").empty()) {
    std::cout << policy_json << "\n";
  } else {
    std::ofstream out(flags.GetString("out"));
    if (!out) {
      std::cerr << "cannot write " << flags.GetString("out") << "\n";
      return 1;
    }
    out << policy_json << "\n";
    std::cerr << "policy written to " << flags.GetString("out") << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
