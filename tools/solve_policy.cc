// solve_policy: command-line front end to the audit-game solver.
//
// Reads a game instance from a JSON file (see core/game_io.h for the
// schema, or export_game for ready-made instances), solves the optimal
// auditing problem at the given budget, and writes the audit policy as
// JSON to stdout or a file.
//
//   solve_policy --game=game.json --budget=20 --eps=0.1 --out=policy.json
//
// The solver backend is picked by registry name (--solver=ishm-cggs,
// ishm-full, cggs, full-lp, brute-force); fixed-threshold backends take the
// vector via --thresholds=2,3,1.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/detection.h"
#include "core/game_io.h"
#include "solver/registry.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace {

using namespace auditgame;  // NOLINT

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("game", "", "path to the game instance JSON (required)");
  flags.Define("budget", "10", "audit budget B");
  flags.Define("eps", "0.1", "ISHM step size");
  flags.Define("solver", "ishm-cggs",
               "solver backend: ishm-cggs | ishm-full | cggs | full-lp | "
               "brute-force (legacy aliases: cggs -> ishm-cggs via --eps, "
               "full -> ishm-full)");
  flags.Define("thresholds", "",
               "comma-separated thresholds b_t for the fixed-threshold "
               "backends (cggs, full-lp)");
  flags.Define("out", "", "output path for the policy JSON (default stdout)");
  flags.Define("mc_samples", "0",
               "use Monte Carlo detection with this many samples (0 = exact)");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested() || flags.GetString("game").empty()) {
    std::cout << flags.HelpString(argv[0]);
    return flags.help_requested() ? 0 : 1;
  }

  std::ifstream in(flags.GetString("game"));
  if (!in) {
    std::cerr << "cannot open " << flags.GetString("game") << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto game = core::ParseGame(buffer.str());
  if (!game.ok()) {
    std::cerr << game.status() << "\n";
    return 1;
  }

  auto compiled = core::Compile(*game);
  if (!compiled.ok()) {
    std::cerr << compiled.status() << "\n";
    return 1;
  }
  core::DetectionModel::Options detection_options;
  if (flags.GetInt("mc_samples") > 0) {
    detection_options.mode = core::DetectionModel::Mode::kMonteCarlo;
    detection_options.mc_samples = flags.GetInt("mc_samples");
  }
  auto detection = core::DetectionModel::Create(
      *game, flags.GetDouble("budget"), detection_options);
  if (!detection.ok()) {
    std::cerr << detection.status() << "\n";
    return 1;
  }

  solver::SolveRequest request;
  request.instance = &*game;
  const std::string threshold_list = flags.GetString("thresholds");
  if (!threshold_list.empty()) {
    request.thresholds = flags.GetDoubleList("thresholds");
  }

  // Legacy aliases: --solver named the ISHM evaluator before the registry
  // existed. Without --thresholds, "full"/"cggs" keep their old
  // ISHM-wrapped meaning; with --thresholds they select the
  // fixed-threshold backend the user is clearly asking for.
  std::string solver_name = flags.GetString("solver");
  if (solver_name == "full") {
    solver_name = request.thresholds.empty() ? "ishm-full" : "full-lp";
  } else if (solver_name == "cggs" && request.thresholds.empty()) {
    std::cerr << "note: --solver=cggs without --thresholds runs ishm-cggs "
                 "(the pre-registry meaning)\n";
    solver_name = "ishm-cggs";
  }

  solver::SolverOptions solver_options;
  solver_options.ishm.step_size = flags.GetDouble("eps");
  auto backend = solver::Create(solver_name, solver_options);
  if (!backend.ok()) {
    std::cerr << backend.status() << "\n";
    return 1;
  }
  auto result = (*backend)->Solve(*compiled, *detection, request);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }

  std::cerr << "solver: " << result->solver << "\n"
            << "objective (expected auditor loss): " << result->objective
            << "\n"
            << "thresholds: "
            << util::FormatDoubleVector(result->thresholds) << "\n";
  if (result->solver == "brute-force") {
    std::cerr << "threshold vectors evaluated: "
              << result->stats.vectors_evaluated << " of "
              << result->stats.search_space << "\n";
  } else if (result->solver == "cggs") {
    std::cerr << "master LPs solved: " << result->stats.lp_solves << ", "
              << "columns generated: " << result->stats.columns_generated
              << "\n";
  } else if (result->stats.evaluations > 0) {
    std::cerr << "threshold vectors explored: " << result->stats.evaluations
              << " (" << result->stats.distinct_evaluations << " distinct)\n";
  }
  std::cerr << "solve time: " << result->stats.seconds << "s\n";
  const std::string policy_json = core::SerializePolicy(result->policy);
  if (flags.GetString("out").empty()) {
    std::cout << policy_json << "\n";
  } else {
    std::ofstream out(flags.GetString("out"));
    if (!out) {
      std::cerr << "cannot write " << flags.GetString("out") << "\n";
      return 1;
    }
    out << policy_json << "\n";
    std::cerr << "policy written to " << flags.GetString("out") << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
