// workload_replay: streams generated scenario workloads through the
// serving layer end to end. Picks a game family from the scenario catalog
// (or a custom spec via flags), builds a drifting multi-cycle alert stream
// (jitter / random-walk / seasonal), replays it through
// service::AuditService across a budget sweep, and reports the
// cache-hit / warm-solve / cold-solve split plus per-cycle latency
// percentiles — the serving-side view of what a scenario costs.
//
// SIGINT/SIGTERM interrupt the replay gracefully: the current cycle
// finishes, the summary and (if requested) the JSON report are still
// written with `interrupted: true` and the cycles actually completed.
//
//   workload_replay --scenario=zipf --stream=walk --cycles=40 --drift=0.08
//   workload_replay --scenario=correlated --budget_lo=6 --budget_hi=18 \
//       --budget_steps=4 --pricing_threads=4 --json=replay.json
#include <signal.h>

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench/exit_codes.h"
#include "prob/count_distribution.h"
#include "scenario/generator.h"
#include "scenario/stream.h"
#include "server/protocol.h"
#include "service/audit_service.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/percentile.h"

namespace {

using namespace auditgame;  // NOLINT
using server::SourceName;

volatile sig_atomic_t g_interrupted = 0;

void HandleStopSignal(int /*signum*/) { g_interrupted = 1; }

int Run(int argc, char** argv) {
  util::FlagParser flags;
  scenario::DefineScenarioFlags(flags, /*default_scenario=*/"zipf",
                                /*default_types=*/"0");
  flags.Define("stream", "jitter",
               "alert-stream evolution: jitter, walk, seasonal");
  flags.Define("cycles", "30", "audit cycles to replay");
  flags.Define("drift", "0.05", "per-cycle drift amplitude");
  flags.Define("revisit", "5",
               "every k-th cycle replays the baseline exactly (0 = never)");
  flags.Define("season", "7", "cycles per seasonal oscillation");
  flags.Define("stream_seed", "1", "stream RNG seed");
  flags.Define("budget_lo", "8", "budget sweep start");
  flags.Define("budget_hi", "16", "budget sweep end");
  flags.Define("budget_steps", "2", "budgets served per cycle");
  flags.Define("eps", "0.25", "ISHM step size");
  flags.Define("warm_max_drift", "0.25",
               "drift threshold above which re-solves are cold");
  flags.Define("threads", "0", "engine workers (0 = one per core)");
  flags.Define("pricing_threads", "1",
               "CGGS pricing threads per solve (results are bit-for-bit "
               "identical for any value)");
  flags.Define("json", "", "machine-readable summary path (empty = none)");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpString(argv[0]);
    return 0;
  }

  auto spec = scenario::SpecFromFlags(flags);
  if (!spec.ok()) {
    std::cerr << spec.status() << "\n";
    return 1;
  }
  auto instance = scenario::Generate(*spec);
  if (!instance.ok()) {
    std::cerr << instance.status() << "\n";
    return 1;
  }

  auto stream_kind = scenario::StreamKindFromName(flags.GetString("stream"));
  if (!stream_kind.ok()) {
    std::cerr << stream_kind.status() << "\n";
    return 1;
  }
  scenario::StreamSpec stream_spec;
  stream_spec.kind = *stream_kind;
  stream_spec.drift_amplitude = flags.GetDouble("drift");
  stream_spec.revisit_period = flags.GetInt("revisit");
  stream_spec.season_period = flags.GetInt("season");
  stream_spec.seed = static_cast<uint64_t>(flags.GetInt("stream_seed"));
  scenario::ScenarioStream stream(instance->alert_distributions, stream_spec);

  service::AuditServiceOptions options;
  options.budgets =
      scenario::BudgetSweep(flags.GetDouble("budget_lo"),
                            flags.GetDouble("budget_hi"),
                            flags.GetInt("budget_steps"));
  if (options.budgets.empty()) {
    std::cerr << "--budget_steps must be >= 1\n";
    return 1;
  }
  options.solver_options.ishm.step_size = flags.GetDouble("eps");
  options.solver_options.cggs.pricing_threads = flags.GetInt("pricing_threads");
  options.warm_start_max_drift = flags.GetDouble("warm_max_drift");
  options.num_threads = flags.GetInt("threads");
  service::AuditService service(std::move(*instance), options);

  struct sigaction action;
  action.sa_handler = HandleStopSignal;
  sigemptyset(&action.sa_mask);
  // SA_RESTART: the flag is checked between cycles, and an interrupted
  // stdout write would otherwise fail with EINTR and silently truncate
  // the CSV this tool promises to finish.
  action.sa_flags = SA_RESTART;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  const int cycles = flags.GetInt("cycles");
  int cycles_completed = 0;
  util::CsvWriter csv(std::cout);
  csv.WriteRow({"cycle", "budget", "source", "drift", "objective",
                "observed_drift", "cycle_seconds"});
  std::vector<double> cycle_seconds;
  // Cycle-over-cycle drift of the stream itself (max-over-types total
  // variation distance vs the previous cycle), independent of the warm-start
  // baseline the per-policy drift column measures against — so adversarial
  // mass-shifts and statistical drift are visible in one report.
  std::vector<prob::CountDistribution> previous_dists;
  std::vector<double> observed_drifts;
  for (int cycle = 1; cycle <= cycles && !g_interrupted; ++cycle) {
    auto dists = stream.Next();
    if (!dists.ok()) {
      std::cerr << "cycle " << cycle << ": " << dists.status() << "\n";
      return 1;
    }
    const double observed_drift =
        cycle == 1 ? 0.0
                   : service::AuditService::MeasureDrift(previous_dists,
                                                         *dists);
    if (cycle > 1) observed_drifts.push_back(observed_drift);
    previous_dists = *dists;
    if (util::Status update =
            service.UpdateAlertDistributions(std::move(*dists));
        !update.ok()) {
      std::cerr << "cycle " << cycle << ": " << update << "\n";
      return 1;
    }
    auto report = service.RunCycle();
    if (!report.ok()) {
      std::cerr << "cycle " << cycle << ": " << report.status() << "\n";
      return 1;
    }
    cycle_seconds.push_back(report->seconds);
    ++cycles_completed;
    for (const auto& policy : report->policies) {
      csv.WriteRow({std::to_string(cycle),
                    util::CsvWriter::FormatDouble(policy.budget),
                    SourceName(policy.source),
                    util::CsvWriter::FormatDouble(policy.drift),
                    util::CsvWriter::FormatDouble(policy.result.objective),
                    util::CsvWriter::FormatDouble(observed_drift),
                    util::CsvWriter::FormatDouble(report->seconds)});
    }
  }

  std::sort(cycle_seconds.begin(), cycle_seconds.end());
  const double p50 = util::NearestRankPercentileSorted(cycle_seconds, 0.50);
  const double p90 = util::NearestRankPercentileSorted(cycle_seconds, 0.90);
  const double p99 = util::NearestRankPercentileSorted(cycle_seconds, 0.99);
  const double worst = cycle_seconds.empty() ? 0.0 : cycle_seconds.back();
  std::sort(observed_drifts.begin(), observed_drifts.end());
  const double drift_p50 =
      util::NearestRankPercentileSorted(observed_drifts, 0.50);
  const double drift_p90 =
      util::NearestRankPercentileSorted(observed_drifts, 0.90);
  const double drift_max =
      observed_drifts.empty() ? 0.0 : observed_drifts.back();
  // The split and wall time come from the service's own counters —
  // the same numbers the audit server's `stats` verb serves.
  const service::AuditService::Stats stats = service.stats();
  if (g_interrupted) {
    std::cerr << "interrupted after " << cycles_completed << "/" << cycles
              << " cycles; writing partial report\n";
  }
  std::cerr << "scenario " << flags.GetString("scenario") << ": "
            << cycles_completed << " cycles x " << options.budgets.size()
            << " budgets in " << stats.total_cycle_seconds << "s — "
            << stats.served_from_cache << " cache hits, "
            << stats.warm_solves << " warm, " << stats.cold_solves
            << " cold\n"
            << "cycle latency: p50 " << p50 << "s p90 " << p90 << "s p99 "
            << p99 << "s max " << worst << "s\n"
            << "observed drift (cycle-over-cycle TV): p50 " << drift_p50
            << " p90 " << drift_p90 << " max " << drift_max << "\n"
            << "policy cache: " << stats.cache.hits << " hits / "
            << stats.cache.misses << " misses, " << stats.cache.insertions
            << " insertions, " << stats.cache.evictions << " evictions; "
            << "compile cache: " << stats.compile.hits << " hits / "
            << stats.compile.misses << " misses\n";

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    util::JsonValue::Object summary;
    summary["tool"] = "workload_replay";
    summary["scenario"] = flags.GetString("scenario");
    summary["stream"] = flags.GetString("stream");
    summary["cycles"] = cycles;
    summary["cycles_completed"] = cycles_completed;
    summary["interrupted"] = g_interrupted != 0;
    summary["budgets"] = static_cast<int>(options.budgets.size());
    summary["cache_hits"] = static_cast<double>(stats.served_from_cache);
    summary["warm_solves"] = static_cast<double>(stats.warm_solves);
    summary["cold_solves"] = static_cast<double>(stats.cold_solves);
    summary["total_seconds"] = stats.total_cycle_seconds;
    summary["cycle_seconds_p50"] = p50;
    summary["cycle_seconds_p90"] = p90;
    summary["cycle_seconds_p99"] = p99;
    summary["cycle_seconds_max"] = worst;
    summary["observed_drift_p50"] = drift_p50;
    summary["observed_drift_p90"] = drift_p90;
    summary["observed_drift_max"] = drift_max;
    // Report-I/O failures get the dedicated smoke exit code so CI can
    // tell them from metric failures (bench/exit_codes.h).
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return bench::kSmokeExitIoError;
    }
    out << util::JsonValue(std::move(summary)).Dump(2) << "\n";
    if (!out) {
      std::cerr << "write failed for " << json_path << "\n";
      return bench::kSmokeExitIoError;
    }
  }
  return bench::kSmokeExitOk;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
