// workload_replay: streams generated scenario workloads through the
// serving layer end to end. Picks a game family from the scenario catalog
// (or a custom spec via flags), builds a drifting multi-cycle alert stream
// (jitter / random-walk / seasonal), replays it through
// service::AuditService across a budget sweep, and reports the
// cache-hit / warm-solve / cold-solve split plus per-cycle latency
// percentiles — the serving-side view of what a scenario costs.
//
//   workload_replay --scenario=zipf --stream=walk --cycles=40 --drift=0.08
//   workload_replay --scenario=correlated --budget_lo=6 --budget_hi=18 \
//       --budget_steps=4 --pricing_threads=4 --json=replay.json
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "prob/count_distribution.h"
#include "scenario/generator.h"
#include "scenario/stream.h"
#include "service/audit_service.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/json.h"

namespace {

using namespace auditgame;  // NOLINT

const char* SourceName(service::AuditService::Source source) {
  switch (source) {
    case service::AuditService::Source::kCache:
      return "cache";
    case service::AuditService::Source::kWarmSolve:
      return "warm";
    case service::AuditService::Source::kColdSolve:
      return "cold";
  }
  return "?";
}

// Nearest-rank percentile of an unsorted latency sample (q in [0, 1]).
double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size());
  size_t index = static_cast<size_t>(std::ceil(rank));
  if (index > 0) --index;
  index = std::min(index, values.size() - 1);
  return values[index];
}

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("scenario", "zipf",
               "catalog scenario (zipf, zipf-deep, correlated, uniform)");
  flags.Define("types", "0", "override the scenario's type count (0 = keep)");
  flags.Define("adversaries", "0",
               "override the scenario's adversary count (0 = keep)");
  flags.Define("game_seed", "0", "override the scenario's seed (0 = keep)");
  flags.Define("stream", "jitter",
               "alert-stream evolution: jitter, walk, seasonal");
  flags.Define("cycles", "30", "audit cycles to replay");
  flags.Define("drift", "0.05", "per-cycle drift amplitude");
  flags.Define("revisit", "5",
               "every k-th cycle replays the baseline exactly (0 = never)");
  flags.Define("season", "7", "cycles per seasonal oscillation");
  flags.Define("stream_seed", "1", "stream RNG seed");
  flags.Define("budget_lo", "8", "budget sweep start");
  flags.Define("budget_hi", "16", "budget sweep end");
  flags.Define("budget_steps", "2", "budgets served per cycle");
  flags.Define("eps", "0.25", "ISHM step size");
  flags.Define("warm_max_drift", "0.25",
               "drift threshold above which re-solves are cold");
  flags.Define("threads", "0", "engine workers (0 = one per core)");
  flags.Define("pricing_threads", "1",
               "CGGS pricing threads per solve (results are bit-for-bit "
               "identical for any value)");
  flags.Define("json", "", "machine-readable summary path (empty = none)");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpString(argv[0]);
    return 0;
  }

  auto spec = scenario::SpecByName(flags.GetString("scenario"));
  if (!spec.ok()) {
    std::cerr << spec.status() << "\n";
    return 1;
  }
  if (const int types = flags.GetInt("types"); types > 0) {
    spec->num_types = types;
  }
  if (const int adversaries = flags.GetInt("adversaries"); adversaries > 0) {
    spec->num_adversaries = adversaries;
  }
  if (const int seed = flags.GetInt("game_seed"); seed > 0) {
    spec->seed = static_cast<uint64_t>(seed);
  }
  auto instance = scenario::Generate(*spec);
  if (!instance.ok()) {
    std::cerr << instance.status() << "\n";
    return 1;
  }

  auto stream_kind = scenario::StreamKindFromName(flags.GetString("stream"));
  if (!stream_kind.ok()) {
    std::cerr << stream_kind.status() << "\n";
    return 1;
  }
  scenario::StreamSpec stream_spec;
  stream_spec.kind = *stream_kind;
  stream_spec.drift_amplitude = flags.GetDouble("drift");
  stream_spec.revisit_period = flags.GetInt("revisit");
  stream_spec.season_period = flags.GetInt("season");
  stream_spec.seed = static_cast<uint64_t>(flags.GetInt("stream_seed"));
  scenario::ScenarioStream stream(instance->alert_distributions, stream_spec);

  service::AuditServiceOptions options;
  options.budgets =
      scenario::BudgetSweep(flags.GetDouble("budget_lo"),
                            flags.GetDouble("budget_hi"),
                            flags.GetInt("budget_steps"));
  if (options.budgets.empty()) {
    std::cerr << "--budget_steps must be >= 1\n";
    return 1;
  }
  options.solver_options.ishm.step_size = flags.GetDouble("eps");
  options.solver_options.cggs.pricing_threads = flags.GetInt("pricing_threads");
  options.warm_start_max_drift = flags.GetDouble("warm_max_drift");
  options.num_threads = flags.GetInt("threads");
  service::AuditService service(std::move(*instance), options);

  const int cycles = flags.GetInt("cycles");
  util::CsvWriter csv(std::cout);
  csv.WriteRow({"cycle", "budget", "source", "drift", "objective",
                "cycle_seconds"});
  int served_from_cache = 0, warm_solves = 0, cold_solves = 0;
  std::vector<double> cycle_seconds;
  for (int cycle = 1; cycle <= cycles; ++cycle) {
    auto dists = stream.Next();
    if (!dists.ok()) {
      std::cerr << "cycle " << cycle << ": " << dists.status() << "\n";
      return 1;
    }
    if (util::Status update =
            service.UpdateAlertDistributions(std::move(*dists));
        !update.ok()) {
      std::cerr << "cycle " << cycle << ": " << update << "\n";
      return 1;
    }
    auto report = service.RunCycle();
    if (!report.ok()) {
      std::cerr << "cycle " << cycle << ": " << report.status() << "\n";
      return 1;
    }
    cycle_seconds.push_back(report->seconds);
    for (const auto& policy : report->policies) {
      switch (policy.source) {
        case service::AuditService::Source::kCache:
          ++served_from_cache;
          break;
        case service::AuditService::Source::kWarmSolve:
          ++warm_solves;
          break;
        case service::AuditService::Source::kColdSolve:
          ++cold_solves;
          break;
      }
      csv.WriteRow({std::to_string(cycle),
                    util::CsvWriter::FormatDouble(policy.budget),
                    SourceName(policy.source),
                    util::CsvWriter::FormatDouble(policy.drift),
                    util::CsvWriter::FormatDouble(policy.result.objective),
                    util::CsvWriter::FormatDouble(report->seconds)});
    }
  }

  const double p50 = Percentile(cycle_seconds, 0.50);
  const double p90 = Percentile(cycle_seconds, 0.90);
  const double p99 = Percentile(cycle_seconds, 0.99);
  const double worst =
      cycle_seconds.empty()
          ? 0.0
          : *std::max_element(cycle_seconds.begin(), cycle_seconds.end());
  double total_seconds = 0.0;
  for (double s : cycle_seconds) total_seconds += s;
  const auto cache_stats = service.cache_stats();
  const auto compile_stats = service.compile_cache_stats();
  std::cerr << "scenario " << flags.GetString("scenario") << ": " << cycles
            << " cycles x " << options.budgets.size() << " budgets in "
            << total_seconds << "s — " << served_from_cache
            << " cache hits, " << warm_solves << " warm, " << cold_solves
            << " cold\n"
            << "cycle latency: p50 " << p50 << "s p90 " << p90 << "s p99 "
            << p99 << "s max " << worst << "s\n"
            << "policy cache: " << cache_stats.hits << " hits / "
            << cache_stats.misses << " misses, " << cache_stats.insertions
            << " insertions, " << cache_stats.evictions << " evictions; "
            << "compile cache: " << compile_stats.hits << " hits / "
            << compile_stats.misses << " misses\n";

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    util::JsonValue::Object summary;
    summary["tool"] = "workload_replay";
    summary["scenario"] = flags.GetString("scenario");
    summary["stream"] = flags.GetString("stream");
    summary["cycles"] = cycles;
    summary["budgets"] = static_cast<int>(options.budgets.size());
    summary["cache_hits"] = served_from_cache;
    summary["warm_solves"] = warm_solves;
    summary["cold_solves"] = cold_solves;
    summary["total_seconds"] = total_seconds;
    summary["cycle_seconds_p50"] = p50;
    summary["cycle_seconds_p90"] = p90;
    summary["cycle_seconds_p99"] = p99;
    summary["cycle_seconds_max"] = worst;
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << util::JsonValue(std::move(summary)).Dump(2) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
