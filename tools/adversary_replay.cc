// adversary_replay: closes the Stackelberg loop against the serving layer.
// A strategic attacker (exact best response, quantal response, or
// fictitious play) observes each cycle's served policy — its mixed per-type
// detection probabilities — and shifts alert mass toward the least-audited
// types; the tool replays that arms race through service::AuditService
// in-process or against a live audit_server over TCP, and reports per-cycle
// defender regret and exploitability gap against an exact re-solve.
//
// Three modes:
//   in-process loop      adversary_replay --scenario=zipf --cycles=20
//   real-trace replay    adversary_replay --trace=emr --cycles=12
//   remote loop / drill  adversary_replay --connect=127.0.0.1:7001 ...
// With --connect and --tenants > 1 the tool becomes the correlated-burst
// drill: one pipelined connection drives every tenant per cycle
// (QueueSend/FlushSends), a BurstGenerator surges a tenant subset together,
// and the report adds burst-fairness numbers — per-tenant `overloaded`
// retry percentiles, answered ratio, per-tenant cycle-order preservation.
//
// Exit codes follow bench/exit_codes.h: 0 ok, 3 the JSON report could not
// be written, 4 a metric gate tripped (loss ratio, unanswered requests,
// order violation), 1 infrastructure/solver failure.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "adversary/attacker.h"
#include "adversary/burst.h"
#include "adversary/loop.h"
#include "adversary/trace.h"
#include "bench/exit_codes.h"
#include "core/detection.h"
#include "core/policy.h"
#include "net/client.h"
#include "prob/count_distribution.h"
#include "scenario/generator.h"
#include "scenario/stream.h"
#include "server/protocol.h"
#include "solver/engine.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/percentile.h"
#include "util/timer.h"

namespace {

using namespace auditgame;  // NOLINT

/// Non-strategic "attacker" that replays a CycleSource-backed stream (the
/// EMR / credit trace adapters) — the same AdversaryLoop harness then
/// measures regret and exploitability on real-trace replays too.
class StreamAttacker : public adversary::Attacker {
 public:
  StreamAttacker(scenario::ScenarioStream* stream, int num_types)
      : stream_(stream), allocation_(static_cast<size_t>(num_types), 0.0) {}

  std::string_view Name() const override { return "trace"; }

  util::StatusOr<std::vector<prob::CountDistribution>> NextCycle(
      const std::vector<double>& /*observed_detection*/) override {
    return stream_->Next();
  }

  const std::vector<double>& last_allocation() const override {
    return allocation_;
  }

 private:
  scenario::ScenarioStream* stream_;
  std::vector<double> allocation_;
};

/// Per-cycle gate: the served loss must stay within `ratio`x of the exact
/// oracle floor, additively banded so zero/negative losses keep meaning
/// (ratio 2 is exactly the loop's within_2x definition).
bool LossRatioGateOk(const adversary::LoopReport& report, double ratio) {
  if (ratio <= 0.0) return true;
  for (const adversary::CycleMetrics& m : report.cycles) {
    if (m.served_loss - m.oracle_loss >
        std::max(1e-9, (ratio - 1.0) * std::abs(m.oracle_loss))) {
      return false;
    }
  }
  return true;
}

void AddLoopSummary(const adversary::LoopReport& report,
                    util::JsonValue::Object& summary) {
  const double served =
      static_cast<double>(report.cache_hits + report.warm_solves +
                          report.cold_solves);
  summary["cycles_completed"] = static_cast<int>(report.cycles.size());
  summary["cache_hits"] = static_cast<double>(report.cache_hits);
  summary["warm_solves"] = static_cast<double>(report.warm_solves);
  summary["cold_solves"] = static_cast<double>(report.cold_solves);
  summary["cache_hit_ratio"] =
      served > 0.0 ? static_cast<double>(report.cache_hits) / served : 0.0;
  summary["regret_gap_mean"] = report.regret_gap_mean;
  summary["regret_gap_max"] = report.regret_gap_max;
  summary["exploitability_gap_mean"] = report.exploitability_gap_mean;
  summary["exploitability_gap_max"] = report.exploitability_gap_max;
  summary["tracking_lag_max_cycles"] = report.tracking_lag_max_cycles;
  summary["tracking_within_2x"] = report.tracking_within_2x;
  summary["served_loss_mean"] = report.served_loss_mean;
  summary["oracle_loss_mean"] = report.oracle_loss_mean;
  summary["defender_seconds_total"] = report.defender_seconds_total;
  summary["oracle_seconds_total"] = report.oracle_seconds_total;
}

void PrintLoopSummary(const adversary::LoopReport& report) {
  std::cerr << report.cycles.size() << " cycles — " << report.cache_hits
            << " cache hits, " << report.warm_solves << " warm, "
            << report.cold_solves << " cold\n"
            << "regret gap: mean " << report.regret_gap_mean << " max "
            << report.regret_gap_max << "; exploitability gap: mean "
            << report.exploitability_gap_mean << " max "
            << report.exploitability_gap_max << "\n"
            << "tracking: within 2x of exact floor "
            << (report.tracking_within_2x ? "yes" : "NO")
            << ", longest lag run " << report.tracking_lag_max_cycles
            << " cycles\n";
}

int WriteJson(const std::string& path, util::JsonValue::Object summary) {
  if (path.empty()) return bench::kSmokeExitOk;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return bench::kSmokeExitIoError;
  }
  out << util::JsonValue(std::move(summary)).Dump(2) << "\n";
  if (!out) {
    std::cerr << "write failed for " << path << "\n";
    return bench::kSmokeExitIoError;
  }
  return bench::kSmokeExitOk;
}

/// One pipelined request window over every tenant: queue all frames, flush
/// once, drain responses, and re-send the `overloaded` subset after a
/// backoff (backpressure means nothing was applied, so the retry is safe).
/// Returns the per-tenant "ok" documents; `answered` counts them as they
/// land and `tenant_retries` accumulates the fairness signal.
util::StatusOr<std::vector<util::JsonValue>> ExchangeWindow(
    net::FrameClient& client, int num_tenants,
    const std::function<std::string(int tenant, int64_t id)>& make_payload,
    int64_t& next_id, int max_rounds, int backoff_ms,
    std::vector<int64_t>& tenant_retries, int64_t& answered) {
  std::vector<util::JsonValue> docs(static_cast<size_t>(num_tenants));
  std::vector<int> outstanding;
  outstanding.reserve(static_cast<size_t>(num_tenants));
  for (int t = 0; t < num_tenants; ++t) outstanding.push_back(t);

  for (int round = 0; round <= max_rounds && !outstanding.empty(); ++round) {
    if (round > 0 && backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
    std::map<int64_t, int> inflight;
    for (int tenant : outstanding) {
      const int64_t id = next_id++;
      inflight.emplace(id, tenant);
      client.QueueSend(make_payload(tenant, id));
    }
    RETURN_IF_ERROR(client.FlushSends());
    outstanding.clear();

    while (!inflight.empty()) {
      std::string payload;
      ASSIGN_OR_RETURN(const bool buffered, client.ReceiveBuffered(&payload));
      if (!buffered) {
        ASSIGN_OR_RETURN(payload, client.Receive());
      }
      ASSIGN_OR_RETURN(util::JsonValue doc, util::JsonValue::Parse(payload));
      const int64_t id = server::RequestIdOf(doc);
      const auto it = inflight.find(id);
      if (it == inflight.end()) {
        return util::InternalError("unmatched response id " +
                                   std::to_string(id));
      }
      const int tenant = it->second;
      inflight.erase(it);
      ASSIGN_OR_RETURN(const std::string status, doc.GetString("status"));
      if (status == "ok") {
        docs[static_cast<size_t>(tenant)] = std::move(doc);
        ++answered;
      } else if (status == "overloaded" || status == "backend_down") {
        ++tenant_retries[static_cast<size_t>(tenant)];
        outstanding.push_back(tenant);
      } else {
        std::string message = "(no message)";
        if (const util::JsonValue* msg = doc.Find("message");
            msg != nullptr && msg->is_string()) {
          message = msg->as_string();
        }
        return util::InternalError("server rejected request: " + message);
      }
    }
  }
  if (!outstanding.empty()) {
    return util::ResourceExhaustedError(
        std::to_string(outstanding.size()) +
        " requests still overloaded after retries");
  }
  return docs;
}

std::string TenantName(int tenant) { return "tenant-" + std::to_string(tenant); }

struct HostPort {
  std::string host;
  uint16_t port = 0;
};

util::StatusOr<HostPort> ParseHostPort(const std::string& value) {
  const size_t colon = value.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == value.size()) {
    return util::InvalidArgumentError("--connect needs host:port, got \"" +
                                      value + "\"");
  }
  HostPort out;
  out.host = value.substr(0, colon);
  const int port = std::atoi(value.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    return util::InvalidArgumentError("bad port in --connect: " + value);
  }
  out.port = static_cast<uint16_t>(port);
  return out;
}

/// The correlated-burst drill: every cycle, one pipelined window ingests a
/// per-tenant (burst-tilted) stream into all tenants and a second window
/// solves them all; tenant 0 carries the adversary loop (observe_policy +
/// local oracle) while the rest supply the correlated load.
int RunBurstDrill(const util::FlagParser& flags, core::GameInstance instance,
                  const adversary::DefenderConfig& config,
                  adversary::Attacker* attacker,
                  const adversary::AttackerEconomics& economics,
                  net::FrameClient& client) {
  const int tenants = flags.GetInt("tenants");
  const int cycles = flags.GetInt("cycles");
  const bool oracle = flags.GetBool("oracle");
  const double max_loss_ratio = flags.GetDouble("max_loss_ratio");
  const int max_retries = flags.GetInt("max_retries");
  const int backoff_ms = flags.GetInt("retry_backoff_ms");

  auto compiled = core::Compile(instance);
  if (!compiled.ok()) {
    std::cerr << compiled.status() << "\n";
    return 1;
  }

  std::unique_ptr<adversary::BurstGenerator> burst;
  const std::string burst_name = flags.GetString("burst");
  if (burst_name != "none") {
    auto kind = adversary::BurstKindFromName(burst_name);
    if (!kind.ok()) {
      std::cerr << kind.status() << "\n";
      return 1;
    }
    adversary::BurstSpec spec;
    spec.kind = *kind;
    spec.period = flags.GetInt("burst_period");
    spec.duration = flags.GetInt("burst_duration");
    spec.amplitude = flags.GetDouble("burst_amplitude");
    spec.tenant_fraction = flags.GetDouble("burst_fraction");
    spec.target_type = flags.GetInt("burst_type");
    spec.seed = static_cast<uint64_t>(flags.GetInt("burst_seed"));
    burst = std::make_unique<adversary::BurstGenerator>(spec, tenants,
                                                        instance.num_types());
  }

  util::CsvWriter csv(std::cout);
  csv.WriteRow({"cycle", "burst_active", "burst_tenants", "source", "drift",
                "served_loss", "oracle_loss", "regret_gap",
                "exploitability_gap", "retries"});

  adversary::LoopReport loop;  // tenant 0's closed-loop metrics
  loop.cycles.reserve(static_cast<size_t>(cycles));
  std::vector<int64_t> tenant_retries(static_cast<size_t>(tenants), 0);
  std::vector<int64_t> last_cycle(static_cast<size_t>(tenants), 0);
  int64_t next_id = 1;
  int64_t answered = 0;
  int64_t total_requests = 0;
  bool order_preserved = true;
  bool exhausted = false;
  std::vector<double> observed;  // tenant 0's last mixed Pal
  double regret_sum = 0.0, exploit_sum = 0.0, served_sum = 0.0,
         oracle_sum = 0.0;
  int lag_run = 0;
  int cycles_completed = 0;

  for (int cycle = 1; cycle <= cycles; ++cycle) {
    auto stream = attacker->NextCycle(observed);
    if (!stream.ok()) {
      std::cerr << "cycle " << cycle << ": " << stream.status() << "\n";
      return 1;
    }
    // Materialize each tenant's view up front so retries re-send identical
    // payloads.
    std::vector<std::vector<prob::CountDistribution>> per_tenant(
        static_cast<size_t>(tenants));
    for (int t = 0; t < tenants; ++t) {
      if (burst != nullptr) {
        auto tilted = burst->Apply(cycle, t, *stream);
        if (!tilted.ok()) {
          std::cerr << "cycle " << cycle << ": " << tilted.status() << "\n";
          return 1;
        }
        per_tenant[static_cast<size_t>(t)] = std::move(*tilted);
      } else {
        per_tenant[static_cast<size_t>(t)] = *stream;
      }
    }
    const int64_t retries_before =
        std::accumulate(tenant_retries.begin(), tenant_retries.end(),
                        int64_t{0});

    total_requests += tenants;
    auto ingest_docs = ExchangeWindow(
        client, tenants,
        [&per_tenant](int tenant, int64_t id) {
          return server::MakeIngestRequest(
              id, TenantName(tenant),
              per_tenant[static_cast<size_t>(tenant)]);
        },
        next_id, max_retries, backoff_ms, tenant_retries, answered);
    if (!ingest_docs.ok()) {
      std::cerr << "cycle " << cycle
                << " ingest: " << ingest_docs.status() << "\n";
      if (ingest_docs.status().code() ==
          util::StatusCode::kResourceExhausted) {
        exhausted = true;
        break;
      }
      return 1;
    }

    total_requests += tenants;
    auto solve_docs = ExchangeWindow(
        client, tenants,
        [](int tenant, int64_t id) {
          return server::MakeSolveCycleRequest(id, TenantName(tenant),
                                               /*observe_policy=*/tenant == 0);
        },
        next_id, max_retries, backoff_ms, tenant_retries, answered);
    if (!solve_docs.ok()) {
      std::cerr << "cycle " << cycle << " solve: " << solve_docs.status()
                << "\n";
      if (solve_docs.status().code() ==
          util::StatusCode::kResourceExhausted) {
        exhausted = true;
        break;
      }
      return 1;
    }

    // Per-tenant cycle order: one tenant lives on one shard FIFO, so its
    // cycle counter must be strictly increasing.
    adversary::CycleMetrics m;
    m.cycle = cycle;
    for (int t = 0; t < tenants; ++t) {
      auto reply =
          server::ParseSolveCycleReply((*solve_docs)[static_cast<size_t>(t)]);
      if (!reply.ok()) {
        std::cerr << "cycle " << cycle << ": " << reply.status() << "\n";
        return 1;
      }
      if (reply->cycle <= last_cycle[static_cast<size_t>(t)]) {
        order_preserved = false;
      }
      last_cycle[static_cast<size_t>(t)] = reply->cycle;
      if (t != 0) continue;
      if (reply->policies.empty() ||
          reply->policies[0].detection_probs.size() !=
              static_cast<size_t>(instance.num_types())) {
        std::cerr << "tenant 0 reply lacks detection_probs — server too old "
                     "for observe_policy?\n";
        return 1;
      }
      server::SolveCyclePolicy& p = reply->policies[0];
      m.source = p.source;
      m.drift = p.drift;
      m.served_loss =
          adversary::DefenderLossAtDetection(*compiled, p.detection_probs);
      m.best_attack_utility =
          adversary::BestAttackUtility(economics, p.detection_probs);
      observed = std::move(p.detection_probs);
    }

    if (oracle) {
      instance.alert_distributions = per_tenant[0];
      solver::EngineRequest request;
      request.solver = config.solver;
      request.instance = &instance;
      request.budget = config.budget;
      request.detection_options = config.detection_options;
      request.options = config.solver_options;
      auto solved = solver::SolverEngine::SolveOne(request);
      if (!solved.ok()) {
        std::cerr << "oracle cycle " << cycle << ": " << solved.status()
                  << "\n";
        return 1;
      }
      auto model = core::DetectionModel::Create(instance, config.budget,
                                                config.detection_options);
      if (!model.ok()) {
        std::cerr << model.status() << "\n";
        return 1;
      }
      auto oracle_pal =
          core::MixedDetectionProbabilities(*model, solved->policy);
      if (!oracle_pal.ok()) {
        std::cerr << oracle_pal.status() << "\n";
        return 1;
      }
      m.oracle_loss =
          adversary::DefenderLossAtDetection(*compiled, *oracle_pal);
      m.regret_gap = std::max(0.0, m.served_loss - m.oracle_loss);
      m.exploitability_gap = std::max(
          0.0, m.best_attack_utility -
                   adversary::BestAttackUtility(economics, *oracle_pal));
      m.within_2x = (m.served_loss - m.oracle_loss) <=
                    std::max(1e-9, std::abs(m.oracle_loss));
      m.lagging =
          m.regret_gap > std::max(1e-9, 0.05 * std::abs(m.oracle_loss));
    }

    const adversary::BurstEvent event =
        burst != nullptr ? burst->EventAt(cycle) : adversary::BurstEvent{};
    const int64_t retries_now =
        std::accumulate(tenant_retries.begin(), tenant_retries.end(),
                        int64_t{0});
    csv.WriteRow({std::to_string(cycle), event.active ? "1" : "0",
                  std::to_string(event.tenants.size()), m.source,
                  util::CsvWriter::FormatDouble(m.drift),
                  util::CsvWriter::FormatDouble(m.served_loss),
                  util::CsvWriter::FormatDouble(m.oracle_loss),
                  util::CsvWriter::FormatDouble(m.regret_gap),
                  util::CsvWriter::FormatDouble(m.exploitability_gap),
                  std::to_string(retries_now - retries_before)});

    if (m.source == "cache") {
      ++loop.cache_hits;
    } else if (m.source == "warm") {
      ++loop.warm_solves;
    } else {
      ++loop.cold_solves;
    }
    regret_sum += m.regret_gap;
    exploit_sum += m.exploitability_gap;
    served_sum += m.served_loss;
    oracle_sum += m.oracle_loss;
    loop.regret_gap_max = std::max(loop.regret_gap_max, m.regret_gap);
    loop.exploitability_gap_max =
        std::max(loop.exploitability_gap_max, m.exploitability_gap);
    lag_run = m.lagging ? lag_run + 1 : 0;
    loop.tracking_lag_max_cycles =
        std::max(loop.tracking_lag_max_cycles, lag_run);
    loop.tracking_within_2x = loop.tracking_within_2x && m.within_2x;
    loop.cycles.push_back(std::move(m));
    ++cycles_completed;
  }

  if (cycles_completed > 0) {
    const double n = static_cast<double>(cycles_completed);
    loop.regret_gap_mean = regret_sum / n;
    loop.exploitability_gap_mean = exploit_sum / n;
    loop.served_loss_mean = served_sum / n;
    loop.oracle_loss_mean = oracle_sum / n;
  }

  std::vector<double> retries_sorted(tenant_retries.begin(),
                                     tenant_retries.end());
  std::sort(retries_sorted.begin(), retries_sorted.end());
  const double retries_p50 =
      util::NearestRankPercentileSorted(retries_sorted, 0.50);
  const double retries_p90 =
      util::NearestRankPercentileSorted(retries_sorted, 0.90);
  const double retries_max =
      retries_sorted.empty() ? 0.0 : retries_sorted.back();
  const int64_t retries_total = std::accumulate(
      tenant_retries.begin(), tenant_retries.end(), int64_t{0});
  const bool all_answered = !exhausted && answered == total_requests;
  const double answered_ratio =
      total_requests > 0
          ? static_cast<double>(answered) / static_cast<double>(total_requests)
          : 1.0;
  const bool ratio_ok = !oracle || LossRatioGateOk(loop, max_loss_ratio);

  std::cerr << "burst drill: " << tenants << " tenants, " << cycles_completed
            << "/" << cycles << " cycles — answered " << answered << "/"
            << total_requests << " (ratio " << answered_ratio << "), "
            << retries_total << " overloaded retries (per-tenant p50 "
            << retries_p50 << " p90 " << retries_p90 << " max " << retries_max
            << "), cycle order " << (order_preserved ? "preserved" : "VIOLATED")
            << "\n";
  PrintLoopSummary(loop);

  util::JsonValue::Object summary;
  summary["tool"] = "adversary_replay";
  summary["mode"] = "burst-drill";
  summary["attacker"] = std::string(attacker->Name());
  summary["tenants"] = tenants;
  summary["cycles"] = cycles;
  summary["burst"] = burst_name;
  summary["total_requests"] = static_cast<double>(total_requests);
  summary["answered"] = static_cast<double>(answered);
  summary["answered_ratio"] = answered_ratio;
  summary["all_requests_answered"] = all_answered;
  summary["order_preserved"] = order_preserved;
  summary["overloaded_retries_total"] = static_cast<double>(retries_total);
  summary["tenant_retries_p50"] = retries_p50;
  summary["tenant_retries_p90"] = retries_p90;
  summary["tenant_retries_max"] = retries_max;
  summary["oracle"] = oracle;
  AddLoopSummary(loop, summary);
  const int io = WriteJson(flags.GetString("json"), std::move(summary));
  if (io != bench::kSmokeExitOk) return io;

  if (!all_answered || !order_preserved || !ratio_ok) {
    std::cerr << "gate failed:" << (all_answered ? "" : " unanswered-requests")
              << (order_preserved ? "" : " cycle-order")
              << (ratio_ok ? "" : " loss-ratio") << "\n";
    return bench::kSmokeExitDisagreement;
  }
  return bench::kSmokeExitOk;
}

int Run(int argc, char** argv) {
  util::FlagParser flags;
  scenario::DefineScenarioFlags(flags, /*default_scenario=*/"zipf",
                                /*default_types=*/"0");
  flags.Define("attacker", "best-response",
               "attacker model: best-response, quantal, fictitious");
  flags.Define("attack_rate", "0.6", "attack-mass tilt strength");
  flags.Define("lambda", "4", "quantal-response rationality");
  flags.Define("attacker_seed", "1", "attacker seed (reserved)");
  flags.Define("cycles", "20", "audit cycles to replay");
  flags.Define("budget", "10", "audit budget served each cycle");
  flags.Define("eps", "0.25", "ISHM step size");
  flags.Define("warm_max_drift", "0.25",
               "drift threshold above which re-solves are cold");
  flags.Define("trace", "",
               "replay a dataset trace instead of a strategic attacker: "
               "emr or credit");
  flags.Define("trace_seed", "2017", "trace world/simulation seed");
  flags.Define("trace_days", "30", "trace days per audit cycle");
  flags.Define("revisit", "0",
               "every k-th trace cycle replays the baseline exactly "
               "(0 = never)");
  flags.Define("connect", "",
               "drive a live audit_server at host:port instead of the "
               "in-process service");
  flags.Define("tenants", "1",
               "with --connect: tenants driven per cycle (> 1 selects the "
               "pipelined burst drill)");
  flags.Define("burst", "none",
               "correlated burst shape across tenants: none, flash, fraud");
  flags.Define("burst_period", "10", "cycles between burst starts");
  flags.Define("burst_duration", "2", "cycles a burst lasts");
  flags.Define("burst_amplitude", "1", "burst tilt strength");
  flags.Define("burst_fraction", "0.5", "fraction of tenants per burst");
  flags.Define("burst_type", "0", "alert type a fraud burst targets");
  flags.Define("burst_seed", "7", "burst tenant-subset seed");
  flags.Define("oracle", "true",
               "re-solve exactly each cycle for regret/exploitability");
  flags.Define("max_loss_ratio", "0",
               "fail (exit 4) when a cycle's served loss exceeds this "
               "multiple of the oracle loss (0 = no gate)");
  flags.Define("max_retries", "200",
               "rounds an overloaded request is retried before giving up");
  flags.Define("retry_backoff_ms", "5", "sleep between retry rounds");
  flags.Define("json", "", "machine-readable summary path (empty = none)");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpString(argv[0]);
    return 0;
  }

  // The game instance: a scenario-catalog game, or the trace's world.
  const std::string trace_name = flags.GetString("trace");
  std::unique_ptr<adversary::TraceAdapter> trace;
  std::unique_ptr<scenario::ScenarioStream> trace_stream;
  core::GameInstance instance;
  if (!trace_name.empty()) {
    auto kind = adversary::TraceKindFromName(trace_name);
    if (!kind.ok()) {
      std::cerr << kind.status() << "\n";
      return 1;
    }
    adversary::TraceSpec spec;
    spec.kind = *kind;
    spec.seed = static_cast<uint64_t>(flags.GetInt("trace_seed"));
    spec.days_per_cycle = flags.GetInt("trace_days");
    auto adapter = adversary::TraceAdapter::Create(spec);
    if (!adapter.ok()) {
      std::cerr << adapter.status() << "\n";
      return 1;
    }
    trace = std::move(*adapter);
    instance = trace->instance();
  } else {
    auto spec = scenario::SpecFromFlags(flags);
    if (!spec.ok()) {
      std::cerr << spec.status() << "\n";
      return 1;
    }
    auto generated = scenario::Generate(*spec);
    if (!generated.ok()) {
      std::cerr << generated.status() << "\n";
      return 1;
    }
    instance = std::move(*generated);
  }

  adversary::DefenderConfig config;
  config.budget = flags.GetDouble("budget");
  config.solver_options.ishm.step_size = flags.GetDouble("eps");
  config.warm_start_max_drift = flags.GetDouble("warm_max_drift");

  auto economics = adversary::DeriveEconomics(instance);
  if (!economics.ok()) {
    std::cerr << economics.status() << "\n";
    return 1;
  }

  // The alert stream driver: a strategic attacker, or the trace replayed
  // through a ScenarioStream (kExternal — baseline revisits still apply).
  std::unique_ptr<adversary::Attacker> attacker;
  if (trace != nullptr) {
    scenario::StreamSpec stream_spec;
    stream_spec.revisit_period = flags.GetInt("revisit");
    trace_stream = std::make_unique<scenario::ScenarioStream>(
        instance.alert_distributions, stream_spec, trace.get());
    attacker = std::make_unique<StreamAttacker>(trace_stream.get(),
                                                instance.num_types());
  } else {
    auto kind = adversary::AttackerKindFromName(flags.GetString("attacker"));
    if (!kind.ok()) {
      std::cerr << kind.status() << "\n";
      return 1;
    }
    adversary::AttackerSpec spec;
    spec.kind = *kind;
    spec.attack_rate = flags.GetDouble("attack_rate");
    spec.lambda = flags.GetDouble("lambda");
    spec.seed = static_cast<uint64_t>(flags.GetInt("attacker_seed"));
    auto made = adversary::MakeAttacker(spec, instance.alert_distributions,
                                        *economics);
    if (!made.ok()) {
      std::cerr << made.status() << "\n";
      return 1;
    }
    attacker = std::move(*made);
  }

  // Remote modes share one connection.
  const std::string connect = flags.GetString("connect");
  std::unique_ptr<net::FrameClient> client;
  if (!connect.empty()) {
    auto host_port = ParseHostPort(connect);
    if (!host_port.ok()) {
      std::cerr << host_port.status() << "\n";
      return 1;
    }
    auto connected = net::FrameClient::Connect(host_port->host,
                                               host_port->port,
                                               /*connect_wait_ms=*/10000);
    if (!connected.ok()) {
      std::cerr << "connect " << connect << ": " << connected.status() << "\n";
      return 1;
    }
    client = std::make_unique<net::FrameClient>(std::move(*connected));
  }

  const int tenants = flags.GetInt("tenants");
  if (tenants > 1) {
    if (client == nullptr) {
      std::cerr << "--tenants > 1 needs --connect (the burst drill drives a "
                   "live server)\n";
      return 1;
    }
    if (trace != nullptr) {
      std::cerr << "--trace and --tenants > 1 cannot be combined\n";
      return 1;
    }
    return RunBurstDrill(flags, std::move(instance), config, attacker.get(),
                         *economics, *client);
  }

  // Single-tenant closed loop, in-process or remote.
  std::unique_ptr<adversary::DefenderClient> defender;
  if (client != nullptr) {
    defender = std::make_unique<adversary::RemoteDefender>(
        client.get(), TenantName(0), flags.GetInt("max_retries"),
        flags.GetInt("retry_backoff_ms"));
  } else {
    defender = std::make_unique<adversary::InProcessDefender>(instance,
                                                              config);
  }

  auto loop = adversary::AdversaryLoop::Create(std::move(instance), config,
                                               defender.get(),
                                               attacker.get());
  if (!loop.ok()) {
    std::cerr << loop.status() << "\n";
    return 1;
  }
  adversary::LoopSpec spec;
  spec.cycles = flags.GetInt("cycles");
  spec.compute_oracle = flags.GetBool("oracle");
  auto report = loop->Run(spec);
  if (!report.ok()) {
    std::cerr << report.status() << "\n";
    return 1;
  }

  util::CsvWriter csv(std::cout);
  csv.WriteRow({"cycle", "source", "drift", "served_loss", "oracle_loss",
                "regret_gap", "exploitability_gap", "best_attack_utility",
                "within_2x", "lagging", "defender_seconds"});
  for (const adversary::CycleMetrics& m : report->cycles) {
    csv.WriteRow({std::to_string(m.cycle), m.source,
                  util::CsvWriter::FormatDouble(m.drift),
                  util::CsvWriter::FormatDouble(m.served_loss),
                  util::CsvWriter::FormatDouble(m.oracle_loss),
                  util::CsvWriter::FormatDouble(m.regret_gap),
                  util::CsvWriter::FormatDouble(m.exploitability_gap),
                  util::CsvWriter::FormatDouble(m.best_attack_utility),
                  m.within_2x ? "1" : "0", m.lagging ? "1" : "0",
                  util::CsvWriter::FormatDouble(m.defender_seconds)});
  }
  PrintLoopSummary(*report);

  util::JsonValue::Object summary;
  summary["tool"] = "adversary_replay";
  summary["mode"] = client != nullptr ? "remote" : "in-process";
  summary["attacker"] = std::string(attacker->Name());
  if (!trace_name.empty()) {
    summary["trace"] = trace_name;
  } else {
    summary["scenario"] = flags.GetString("scenario");
  }
  summary["cycles"] = spec.cycles;
  summary["oracle"] = spec.compute_oracle;
  AddLoopSummary(*report, summary);
  const int io = WriteJson(flags.GetString("json"), std::move(summary));
  if (io != bench::kSmokeExitOk) return io;

  const double max_loss_ratio = flags.GetDouble("max_loss_ratio");
  if (spec.compute_oracle && !LossRatioGateOk(*report, max_loss_ratio)) {
    std::cerr << "gate failed: a cycle's served loss exceeded "
              << max_loss_ratio << "x the oracle loss\n";
    return bench::kSmokeExitDisagreement;
  }
  return bench::kSmokeExitOk;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
