// audit_serve: end-to-end replay of a multi-cycle alert stream through the
// serving layer (service::AuditService + PolicyCache).
//
// Each cycle the tool refits the per-type alert-count distributions — a
// bounded random jitter of the baseline pmfs, standing in for the daily
// refit a deployment would run on its logs — ingests them into the
// service, and requests the optimal policies for every configured budget.
// Every `--revisit`-th cycle replays the baseline distributions exactly,
// exercising the fingerprint cache-hit path; all other cycles drift and
// exercise the warm-started (small drift) or cold (large drift) re-solve
// paths. One CSV row per (cycle, budget) goes to stdout; a summary with
// cache statistics goes to stderr.
//
//   audit_serve --cycles=20 --budgets=6,10 --drift=0.05
//   audit_serve --game=game.json --cycles=50 --budgets=8
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/game_io.h"
#include "data/syn_a.h"
#include "prob/count_distribution.h"
#include "server/protocol.h"
#include "service/audit_service.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/random.h"

namespace {

using namespace auditgame;  // NOLINT
using server::SourceName;

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("game", "", "game instance JSON (default: built-in Syn A)");
  flags.Define("cycles", "20", "number of audit cycles to replay");
  flags.Define("budgets", "6,10", "budgets served each cycle");
  flags.Define("eps", "0.1", "ISHM step size");
  flags.Define("drift", "0.05",
               "pmf jitter amplitude applied to the baseline each cycle");
  flags.Define("revisit", "5",
               "every k-th cycle replays the baseline distributions exactly "
               "(0 = never)");
  flags.Define("warm_max_drift", "0.25",
               "drift threshold above which re-solves are cold");
  flags.Define("threads", "0", "engine workers (0 = one per core)");
  flags.Define("seed", "1", "stream RNG seed");
  flags.Define("json", "", "machine-readable summary path (empty = none)");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpString(argv[0]);
    return 0;
  }

  util::StatusOr<core::GameInstance> instance = [&flags] {
    const std::string path = flags.GetString("game");
    if (path.empty()) return data::MakeSynA();
    std::ifstream in(path);
    if (!in) {
      return util::StatusOr<core::GameInstance>(
          util::NotFoundError("cannot open " + path));
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    return core::ParseGame(buffer.str());
  }();
  if (!instance.ok()) {
    std::cerr << instance.status() << "\n";
    return 1;
  }

  service::AuditServiceOptions options;
  options.budgets = flags.GetDoubleList("budgets");
  options.solver_options.ishm.step_size = flags.GetDouble("eps");
  options.warm_start_max_drift = flags.GetDouble("warm_max_drift");
  options.num_threads = flags.GetInt("threads");
  if (options.budgets.empty()) {
    std::cerr << "--budgets must name at least one budget\n";
    return 1;
  }
  const std::vector<prob::CountDistribution> baseline =
      instance->alert_distributions;
  service::AuditService service(std::move(*instance), options);

  const int cycles = flags.GetInt("cycles");
  const int revisit = flags.GetInt("revisit");
  const double drift_amplitude = flags.GetDouble("drift");
  util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));

  util::CsvWriter csv(std::cout);
  csv.WriteRow({"cycle", "budget", "source", "drift", "objective",
                "cycle_seconds"});
  for (int cycle = 1; cycle <= cycles; ++cycle) {
    std::vector<prob::CountDistribution> dists;
    if (revisit > 0 && cycle % revisit == 0) {
      dists = baseline;  // replay: an already-fingerprinted configuration
    } else {
      for (const prob::CountDistribution& d : baseline) {
        auto jittered = prob::JitterPmf(d, drift_amplitude, rng);
        if (!jittered.ok()) {
          std::cerr << "cycle " << cycle << ": " << jittered.status() << "\n";
          return 1;
        }
        dists.push_back(std::move(*jittered));
      }
    }
    if (util::Status update = service.UpdateAlertDistributions(std::move(dists));
        !update.ok()) {
      std::cerr << "cycle " << cycle << ": " << update << "\n";
      return 1;
    }
    auto report = service.RunCycle();
    if (!report.ok()) {
      std::cerr << "cycle " << cycle << ": " << report.status() << "\n";
      return 1;
    }
    for (const auto& policy : report->policies) {
      csv.WriteRow({std::to_string(cycle),
                    util::CsvWriter::FormatDouble(policy.budget),
                    SourceName(policy.source),
                    util::CsvWriter::FormatDouble(policy.drift),
                    util::CsvWriter::FormatDouble(policy.result.objective),
                    util::CsvWriter::FormatDouble(report->seconds)});
    }
  }

  // The split comes from the service's own lifetime counters (the same
  // numbers the audit server's `stats` verb serves).
  const service::AuditService::Stats stats = service.stats();
  std::cerr << "replayed " << stats.cycles << " cycles x "
            << options.budgets.size() << " budgets in "
            << stats.total_cycle_seconds << "s: " << stats.served_from_cache
            << " cache hits, " << stats.warm_solves << " warm solves, "
            << stats.cold_solves << " cold solves\n"
            << "policy cache: " << stats.cache.hits << " hits / "
            << stats.cache.misses << " misses, " << stats.cache.insertions
            << " insertions, " << stats.cache.evictions << " evictions\n"
            << "compile cache: " << stats.compile.hits << " hits / "
            << stats.compile.misses << " misses\n";

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    util::JsonValue::Object summary;
    summary["tool"] = "audit_serve";
    summary["cycles"] = cycles;
    summary["budgets"] = static_cast<int>(options.budgets.size());
    summary["cache_hits"] = static_cast<double>(stats.served_from_cache);
    summary["warm_solves"] = static_cast<double>(stats.warm_solves);
    summary["cold_solves"] = static_cast<double>(stats.cold_solves);
    summary["total_seconds"] = stats.total_cycle_seconds;
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << util::JsonValue(std::move(summary)).Dump(2) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
