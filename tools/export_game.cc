// export_game: writes one of the built-in game instances (the paper's
// datasets) as JSON, for use with solve_policy or external tooling.
//
//   export_game --dataset=syn_a > syn_a.json
//   export_game --dataset=emr --out=emr.json
//
// With --solver, the instance is also solved (at --budget) through the
// solver registry before export and a summary goes to stderr — a quick
// sanity check that an exported game is well-formed and solvable:
//
//   export_game --dataset=syn_a --solver=ishm-cggs --budget=10 > syn_a.json
#include <fstream>
#include <iostream>

#include "core/game_io.h"
#include "data/credit.h"
#include "data/emr.h"
#include "data/syn_a.h"
#include "solver/engine.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace {

using namespace auditgame;  // NOLINT

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("dataset", "syn_a", "which instance: syn_a | emr | credit");
  flags.Define("out", "", "output path (default stdout)");
  flags.Define("seed", "0", "generation seed override (0 = dataset default)");
  flags.Define("solver", "",
               "when set, also solve the instance with this registry "
               "backend (e.g. ishm-cggs) and report the objective on stderr");
  flags.Define("budget", "10", "audit budget B for --solver");
  flags.Define("eps", "0.1", "ISHM step size for --solver");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpString(argv[0]);
    return 0;
  }

  util::StatusOr<core::GameInstance> game =
      util::InvalidArgumentError("unset");
  const std::string dataset = flags.GetString("dataset");
  if (dataset == "syn_a") {
    game = data::MakeSynA();
  } else if (dataset == "emr") {
    data::EmrConfig config;
    if (flags.GetInt("seed") != 0) {
      config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
    }
    game = data::MakeEmrGame(config);
  } else if (dataset == "credit") {
    data::CreditConfig config;
    if (flags.GetInt("seed") != 0) {
      config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
    }
    game = data::MakeCreditGame(config);
  } else {
    std::cerr << "unknown --dataset: " << dataset << "\n";
    return 1;
  }
  if (!game.ok()) {
    std::cerr << game.status() << "\n";
    return 1;
  }

  if (!flags.GetString("solver").empty()) {
    solver::EngineRequest request;
    request.solver = flags.GetString("solver");
    request.instance = &*game;
    request.budget = flags.GetDouble("budget");
    request.options.ishm.step_size = flags.GetDouble("eps");
    auto result = solver::SolverEngine::SolveOne(request);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    std::cerr << dataset << " @ B=" << request.budget << " via "
              << result->solver << ": objective " << result->objective
              << ", thresholds "
              << util::FormatDoubleVector(result->thresholds) << " ("
              << result->stats.seconds << "s)\n";
  }

  const std::string json = core::SerializeGame(*game);
  if (flags.GetString("out").empty()) {
    std::cout << json << "\n";
  } else {
    std::ofstream out(flags.GetString("out"));
    if (!out) {
      std::cerr << "cannot write " << flags.GetString("out") << "\n";
      return 1;
    }
    out << json << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
