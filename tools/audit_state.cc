// audit_state: offline inspector for an audit_server --data_dir. Walks
// every shard-<i>/ directory, verifies each snapshot (header + body CRC)
// and WAL segment (header CRC, per-record CRC, LSN contiguity within and
// across segments, snapshot coverage), and reports what recovery would
// see. A torn tail in the *newest* segment of a shard is a legal crash
// artifact and is reported as such; torn or unreadable data anywhere else
// is corruption and the process exits 2 — the CI contract.
//
// With --replay=1 the tool additionally performs the server's actual
// recovery (newest snapshot restore + WAL suffix replay through the real
// Shard code path) and prints each shard's timing-free state fingerprint;
// the scenario/service flags must then match the server that wrote the
// state, or the config guard refuses the snapshot exactly as a restart
// would. Replay truncates torn tails just like a server restart.
//
// With --compare=<dir2> both data dirs are replayed independently and
// `recovered_identical` reports whether every shard fingerprint matches —
// the bit-for-bit recovery check the crash-recovery CI smoke gates.
//
//   audit_state --data_dir=/var/lib/audit                  # verify
//   audit_state --data_dir=d --dump=1                      # per-record dump
//   audit_state --data_dir=d --replay=1 --scenario=uniform --types=5
//   audit_state --data_dir=d1 --compare=d2 --replay=1 --json=BENCH_persist.json
//
// Exit codes: 0 clean (torn newest tail allowed), 1 usage/config error,
// 2 corruption or fingerprint mismatch.
#include <sys/stat.h>

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "scenario/generator.h"
#include "server/binary_codec.h"
#include "server/durability.h"
#include "server/shard.h"
#include "util/flags.h"
#include "util/json.h"

namespace {

using namespace auditgame;  // NOLINT

struct ShardInspection {
  int shard = 0;
  uint64_t snapshots = 0;
  uint64_t last_snapshot_seq = 0;
  uint64_t snapshot_wal_lsn = 0;
  uint64_t wal_segments = 0;
  uint64_t wal_records = 0;
  uint64_t last_lsn = 0;
  bool torn_tail = false;       // legal crash artifact (newest segment)
  std::string torn_reason;
  std::vector<std::string> errors;  // real corruption
  std::string fingerprint;          // replay mode only

  bool corrupt() const { return !errors.empty(); }
};

int CountShardDirs(const std::string& data_dir) {
  int n = 0;
  for (;; ++n) {
    struct stat st;
    const std::string dir = server::ShardPersistence::ShardDir(data_dir, n);
    if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) break;
  }
  return n;
}

/// Best-effort verb label for --dump (binary frames carry a verb byte,
/// JSON payloads a "verb" key; anything else is opaque).
std::string VerbLabel(const std::string& payload) {
  if (server::IsBinaryFrame(payload)) {
    if (auto request = server::DecodeBinaryRequest(payload); request.ok()) {
      return request->verb == server::Verb::kIngest ? "ingest(bin)"
                                                    : "solve_cycle(bin)";
    }
    return "binary(undecodable)";
  }
  if (auto doc = util::JsonValue::Parse(payload); doc.ok()) {
    if (auto verb = doc->GetString("verb"); verb.ok()) return *verb;
  }
  return "opaque";
}

ShardInspection InspectShard(const std::string& data_dir, int shard,
                             bool dump) {
  ShardInspection report;
  report.shard = shard;
  const std::string dir = server::ShardPersistence::ShardDir(data_dir, shard);

  const std::vector<std::string> snapshots =
      server::ListNumberedFiles(dir, "snapshot-", ".snap");
  report.snapshots = snapshots.size();
  bool have_snapshot = false;
  for (const std::string& name : snapshots) {
    auto contents = server::ReadSnapshotFile(dir + "/" + name);
    if (!contents.ok()) {
      // Snapshots are written to .tmp and renamed, so a listed .snap that
      // fails to verify is disk damage, not a crash artifact.
      report.errors.push_back(contents.status().ToString());
      continue;
    }
    if (contents->shard != static_cast<uint32_t>(shard)) {
      report.errors.push_back(dir + "/" + name + ": belongs to shard " +
                              std::to_string(contents->shard));
      continue;
    }
    // Newest last in the sorted list: remember the one recovery would use.
    report.last_snapshot_seq = contents->seq;
    report.snapshot_wal_lsn = contents->wal_lsn;
    have_snapshot = true;
    if (dump) {
      std::cout << "shard " << shard << " " << name << ": seq "
                << contents->seq << ", wal_lsn " << contents->wal_lsn
                << ", body " << contents->body.size() << " bytes\n";
    }
  }

  const std::vector<std::string> segments =
      server::ListNumberedFiles(dir, "wal-", ".wal");
  report.wal_segments = segments.size();
  uint64_t min_start_lsn = 0;
  uint64_t previous_last_lsn = 0;
  bool have_records = false;
  for (size_t i = 0; i < segments.size(); ++i) {
    const std::string path = dir + "/" + segments[i];
    auto scan = server::ScanWalSegment(
        path, dump ? std::function<void(const server::WalRecord&)>(
                         [&](const server::WalRecord& record) {
                           std::cout << "shard " << shard << " lsn "
                                     << record.lsn << ": "
                                     << record.payload.size() << " bytes "
                                     << VerbLabel(record.payload) << "\n";
                         })
                   : nullptr);
    if (!scan.ok()) {
      report.errors.push_back(scan.status().ToString());
      continue;
    }
    if (scan->shard != static_cast<uint32_t>(shard)) {
      report.errors.push_back(path + ": belongs to shard " +
                              std::to_string(scan->shard));
      continue;
    }
    if (!scan->torn_reason.empty()) {
      if (i + 1 == segments.size()) {
        report.torn_tail = true;  // the legal kill -9 artifact
        report.torn_reason = scan->torn_reason;
      } else {
        report.errors.push_back(path + ": corrupt non-final segment (" +
                                scan->torn_reason + ")");
      }
    }
    if (have_records && scan->records > 0 &&
        scan->start_lsn != previous_last_lsn + 1) {
      report.errors.push_back(path + ": inter-segment LSN gap (starts at " +
                              std::to_string(scan->start_lsn) +
                              " after segment ending at " +
                              std::to_string(previous_last_lsn) + ")");
    }
    if (scan->records > 0) {
      if (!have_records) min_start_lsn = scan->start_lsn;
      previous_last_lsn = scan->last_lsn;
      have_records = true;
      report.last_lsn = scan->last_lsn;
    }
    report.wal_records += scan->records;
  }

  // Coverage: every record past the newest snapshot must still exist, or
  // replay cannot reach the pre-crash state.
  if (have_snapshot && have_records && report.last_lsn > report.snapshot_wal_lsn &&
      min_start_lsn > report.snapshot_wal_lsn + 1) {
    report.errors.push_back(
        dir + ": WAL starts at LSN " + std::to_string(min_start_lsn) +
        " but the newest snapshot covers only through " +
        std::to_string(report.snapshot_wal_lsn) + " (replay gap)");
  }
  if (!have_snapshot && have_records && min_start_lsn != 1) {
    report.errors.push_back(dir + ": no usable snapshot and WAL starts at LSN " +
                            std::to_string(min_start_lsn) + ", not 1");
  }
  return report;
}

/// Runs the real recovery path (Shard + ShardPersistence) for each shard
/// and records the post-recovery state fingerprint.
util::Status ReplayShards(const std::string& data_dir, int num_shards,
                          const core::GameInstance& base_instance,
                          const service::AuditServiceOptions& service_options,
                          std::vector<ShardInspection>& reports) {
  server::DurabilityOptions durability;
  durability.data_dir = data_dir;
  for (int i = 0; i < num_shards; ++i) {
    server::Shard shard(
        i, base_instance, service_options, /*queue_capacity=*/1,
        /*max_batch=*/1, [](std::vector<server::Shard::Response>) {}, [] {},
        std::make_unique<server::ShardPersistence>(i, durability));
    RETURN_IF_ERROR(shard.Recover());
    reports[static_cast<size_t>(i)].fingerprint =
        shard.StateFingerprint().ToHex();
  }
  return util::OkStatus();
}

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("data_dir", "", "audit_server durability root to inspect");
  flags.Define("dump", "0", "print every snapshot and WAL record");
  flags.Define("replay", "0",
               "run the real recovery (snapshot restore + WAL replay) and "
               "print per-shard state fingerprints; requires the scenario/"
               "service flags to match the server that wrote the state");
  flags.Define("compare", "",
               "second data_dir: replay both and check the fingerprints "
               "match (implies --replay)");
  flags.Define("json", "", "write a machine-readable report here");
  flags.Define("loadgen_json", "",
               "fold answered_ratio from this loadgen report into --json "
               "(the CI gate rides in one file)");
  scenario::DefineScenarioFlags(flags, /*default_scenario=*/"uniform",
                                /*default_types=*/"5");
  flags.Define("budgets", "6,10", "budgets served per solve_cycle");
  flags.Define("eps", "0.25", "ISHM step size");
  flags.Define("warm_max_drift", "0.25",
               "drift threshold above which re-solves are cold");
  flags.Define("threads", "-1", "engine workers per tenant service");
  flags.Define("pricing_threads", "1", "CGGS pricing threads per solve");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpString(argv[0]);
    return 0;
  }
  const std::string data_dir = flags.GetString("data_dir");
  if (data_dir.empty()) {
    std::cerr << "--data_dir is required\n";
    return 1;
  }
  const bool dump = flags.GetInt("dump") != 0;
  const std::string compare_dir = flags.GetString("compare");
  const bool replay = flags.GetInt("replay") != 0 || !compare_dir.empty();

  const int num_shards = CountShardDirs(data_dir);
  if (num_shards == 0) {
    std::cerr << "audit_state: no shard-<i> directories under " << data_dir
              << "\n";
    return 2;
  }

  std::vector<ShardInspection> reports;
  reports.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    reports.push_back(InspectShard(data_dir, i, dump));
  }

  bool recovered_identical = true;
  std::vector<ShardInspection> compare_reports;
  if (replay) {
    auto spec = scenario::SpecFromFlags(flags);
    if (!spec.ok()) {
      std::cerr << spec.status() << "\n";
      return 1;
    }
    auto instance = scenario::Generate(*spec);
    if (!instance.ok()) {
      std::cerr << instance.status() << "\n";
      return 1;
    }
    service::AuditServiceOptions service_options;
    service_options.budgets = flags.GetDoubleList("budgets");
    service_options.solver_options.ishm.step_size = flags.GetDouble("eps");
    service_options.solver_options.cggs.pricing_threads =
        flags.GetInt("pricing_threads");
    service_options.warm_start_max_drift = flags.GetDouble("warm_max_drift");
    service_options.num_threads = flags.GetInt("threads");

    if (util::Status replayed =
            ReplayShards(data_dir, num_shards, *instance, service_options,
                         reports);
        !replayed.ok()) {
      std::cerr << "audit_state: replay of " << data_dir
                << " failed: " << replayed << "\n";
      return 2;
    }
    if (!compare_dir.empty()) {
      const int compare_shards = CountShardDirs(compare_dir);
      if (compare_shards != num_shards) {
        std::cerr << "audit_state: " << compare_dir << " has "
                  << compare_shards << " shards, " << data_dir << " has "
                  << num_shards << "\n";
        return 2;
      }
      for (int i = 0; i < num_shards; ++i) {
        compare_reports.push_back(InspectShard(compare_dir, i, /*dump=*/false));
      }
      if (util::Status replayed =
              ReplayShards(compare_dir, num_shards, *instance, service_options,
                           compare_reports);
          !replayed.ok()) {
        std::cerr << "audit_state: replay of " << compare_dir
                  << " failed: " << replayed << "\n";
        return 2;
      }
      for (int i = 0; i < num_shards; ++i) {
        const size_t n = static_cast<size_t>(i);
        if (reports[n].fingerprint != compare_reports[n].fingerprint) {
          recovered_identical = false;
          std::cerr << "audit_state: shard " << i << " fingerprints differ: "
                    << reports[n].fingerprint << " vs "
                    << compare_reports[n].fingerprint << "\n";
        }
      }
    }
  }

  bool corrupt = false;
  uint64_t total_records = 0;
  for (const ShardInspection& r : reports) {
    std::cerr << "shard " << r.shard << ": " << r.snapshots << " snapshot(s)";
    if (r.last_snapshot_seq > 0) {
      std::cerr << " (newest seq " << r.last_snapshot_seq << " through LSN "
                << r.snapshot_wal_lsn << ")";
    }
    std::cerr << ", " << r.wal_segments << " WAL segment(s), "
              << r.wal_records << " record(s) through LSN " << r.last_lsn;
    if (r.torn_tail) std::cerr << ", torn tail (" << r.torn_reason << ")";
    if (!r.fingerprint.empty()) std::cerr << ", fingerprint " << r.fingerprint;
    std::cerr << "\n";
    for (const std::string& error : r.errors) {
      std::cerr << "  CORRUPT: " << error << "\n";
    }
    corrupt = corrupt || r.corrupt();
    total_records += r.wal_records;
  }
  for (const ShardInspection& r : compare_reports) {
    corrupt = corrupt || r.corrupt();
  }

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    util::JsonValue::Object body;
    body["bench"] = "persist";
    body["data_dir"] = data_dir;
    body["num_shards"] = num_shards;
    body["wal_records_total"] = static_cast<double>(total_records);
    body["verify_clean"] = !corrupt;
    if (!compare_dir.empty()) {
      body["recovered_identical"] = recovered_identical && !corrupt;
    }
    const std::string loadgen_json = flags.GetString("loadgen_json");
    if (!loadgen_json.empty()) {
      std::ifstream in(loadgen_json);
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      auto doc = util::JsonValue::Parse(text);
      if (!doc.ok()) {
        std::cerr << "audit_state: cannot parse " << loadgen_json << ": "
                  << doc.status() << "\n";
        return 1;
      }
      if (auto ratio = doc->GetNumber("answered_ratio"); ratio.ok()) {
        body["answered_ratio"] = *ratio;
      }
      for (const char* key : {"all_requests_answered", "zero_protocol_errors",
                              "order_preserved"}) {
        auto value = doc->GetBool(key);
        body[key] = value.ok() && *value;
      }
    }
    util::JsonValue::Array shards;
    for (const ShardInspection& r : reports) {
      util::JsonValue::Object obj;
      obj["shard"] = r.shard;
      obj["snapshots"] = static_cast<double>(r.snapshots);
      obj["last_snapshot_seq"] = static_cast<double>(r.last_snapshot_seq);
      obj["wal_segments"] = static_cast<double>(r.wal_segments);
      obj["wal_records"] = static_cast<double>(r.wal_records);
      obj["last_lsn"] = static_cast<double>(r.last_lsn);
      obj["torn_tail"] = r.torn_tail;
      obj["corrupt"] = r.corrupt();
      if (!r.fingerprint.empty()) obj["fingerprint"] = r.fingerprint;
      shards.push_back(std::move(obj));
    }
    body["shards"] = std::move(shards);
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << util::JsonValue(std::move(body)).Dump(2) << "\n";
  }

  if (corrupt) return 2;
  if (!recovered_identical) return 2;
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
