// audit_router: the cluster front door. Speaks the same JSON/binary frame
// protocol as audit_server on its listening side and fans requests out to
// --backends audit_server processes: tenants are placed by consistent
// hashing (virtual nodes over the FNV-1a tenant hash), frames are
// forwarded over pipelined per-backend connections with correlation-id
// remapping, and state-mutating verbs are mirrored to each tenant's ring
// successor so a killed backend's tenants are served from a warm
// PolicyCache after re-routing. Health checks (periodic `stats` pings +
// response timeouts) drive the live ring: a dead backend's in-flight
// requests answer `backend_down` (retryable) and its tenants move to the
// successor; a recovered backend rejoins automatically.
//
// SIGINT/SIGTERM trigger a graceful drain (accepted requests finish,
// responses flush), then the process prints final stats to stderr and —
// with --json — writes the gateable cluster report, optionally folding a
// loadgen report's answered_ratio/order booleans into it so the CI drill
// gates one file.
//
//   audit_router --port=7450 --backends=127.0.0.1:7451,127.0.0.1:7452
#include <signal.h>

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>

#include "server/router.h"
#include "util/flags.h"
#include "util/json.h"

namespace {

using namespace auditgame;  // NOLINT

server::Router* g_router = nullptr;

void HandleStopSignal(int /*signum*/) {
  if (g_router != nullptr) g_router->RequestStop();
}

std::vector<std::string> SplitCommaList(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  std::stringstream stream(text);
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("host", "127.0.0.1", "numeric IPv4 bind address");
  flags.Define("port", "7450", "TCP port (0 = ephemeral, printed on start)");
  flags.Define("backends", "",
               "comma-separated backend audit_server addresses "
               "(host:port,host:port,...); list order is the ring identity");
  flags.Define("reactors", "1", "client-facing IO event-loop threads");
  flags.Define("poller", "default",
               "event backend: default (epoll on Linux), epoll, poll");
  flags.Define("vnodes", "128", "virtual nodes per backend on the hash ring");
  flags.Define("replicate", "1",
               "mirror ingest/solve_cycle to each tenant's ring successor "
               "(warm failover); 0 = route only");
  flags.Define("replica_retries", "200",
               "overloaded-mirror retry budget per op (the client response "
               "is held until the mirror applied)");
  flags.Define("replica_retry_backoff_ms", "2",
               "delay between overloaded-mirror retries");
  flags.Define("window", "256",
               "per-backend in-flight frame window (pipelining depth)");
  flags.Define("backend_queue", "4096",
               "per-backend accepted-but-unanswered bound (beyond it new "
               "requests answer overloaded)");
  flags.Define("backend_timeout_ms", "5000",
               "no response from a backend for this long => drop the "
               "connection and fail over");
  flags.Define("ping_interval_ms", "500",
               "stats-ping period per backend (keeps the response-timeout "
               "health check armed); 0 = off");
  flags.Define("backend_wait_ms", "10000",
               "startup grace for backends to come up before serving");
  flags.Define("max_frame_kb", "1024", "frame payload cap in KiB");
  flags.Define("idle_timeout_ms", "300000",
               "close client connections idle this long (0 = never)");
  flags.Define("max_connections", "0",
               "live client-connection cap (0 = unlimited)");
  flags.Define("drain_timeout_ms", "10000",
               "graceful-stop budget for flushing in-flight responses");
  flags.Define("json", "",
               "write the cluster BENCH report (ReportBody) here on clean "
               "drain");
  flags.Define("loadgen_json", "",
               "fold answered_ratio and the protocol booleans from this "
               "loadgen report into --json (the CI gate rides in one file)");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpString(argv[0]);
    return 0;
  }

  server::RouterOptions options;
  options.host = flags.GetString("host");
  options.port = static_cast<uint16_t>(flags.GetInt("port"));
  options.backends = SplitCommaList(flags.GetString("backends"));
  if (options.backends.empty()) {
    std::cerr << "--backends must name at least one host:port\n";
    return 1;
  }
  options.num_reactors = flags.GetInt("reactors");
  const std::string poller = flags.GetString("poller");
  if (poller == "default") {
    options.poller_backend = net::PollerBackend::kDefault;
  } else if (poller == "epoll") {
    options.poller_backend = net::PollerBackend::kEpoll;
  } else if (poller == "poll") {
    options.poller_backend = net::PollerBackend::kPoll;
  } else {
    std::cerr << "--poller must be default, epoll, or poll\n";
    return 1;
  }
  options.virtual_nodes = flags.GetInt("vnodes");
  options.replicate = flags.GetInt("replicate") != 0;
  options.replica_retries = flags.GetInt("replica_retries");
  options.replica_retry_backoff_ms = flags.GetInt("replica_retry_backoff_ms");
  options.ping_interval_ms = flags.GetInt("ping_interval_ms");
  options.backend_connect_wait_ms = flags.GetInt("backend_wait_ms");
  options.channel.window = flags.GetInt("window");
  options.channel.queue_capacity =
      static_cast<size_t>(std::max(1, flags.GetInt("backend_queue")));
  options.channel.response_timeout_ms = flags.GetInt("backend_timeout_ms");
  options.max_frame_payload =
      static_cast<size_t>(flags.GetInt("max_frame_kb")) * 1024;
  options.idle_timeout_ms = flags.GetInt("idle_timeout_ms");
  options.max_connections =
      static_cast<size_t>(std::max(0, flags.GetInt("max_connections")));
  options.drain_timeout_ms = flags.GetInt("drain_timeout_ms");

  server::Router router(options);
  if (util::Status started = router.Start(); !started.ok()) {
    std::cerr << started << "\n";
    return 1;
  }

  g_router = &router;
  struct sigaction action;
  action.sa_handler = HandleStopSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  signal(SIGPIPE, SIG_IGN);

  std::cerr << "audit_router: listening on " << options.host << ":"
            << router.port() << " routing "
            << static_cast<int>(options.backends.size()) << " backends ("
            << options.virtual_nodes << " vnodes, replicate="
            << (options.replicate ? "on" : "off") << ")\n";

  util::Status run = router.Run();
  g_router = nullptr;
  if (!run.ok()) {
    std::cerr << run << "\n";
    return 1;
  }
  std::cerr << "audit_router: drained; final stats:\n"
            << util::JsonValue(router.StatsBody()).Dump(2) << "\n";

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    util::JsonValue::Object body = router.ReportBody();
    body["bench"] = "cluster_router";
    const std::string loadgen_json = flags.GetString("loadgen_json");
    if (!loadgen_json.empty()) {
      std::ifstream in(loadgen_json);
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      auto doc = util::JsonValue::Parse(text);
      if (!doc.ok()) {
        std::cerr << "audit_router: cannot parse " << loadgen_json << ": "
                  << doc.status() << "\n";
        return 1;
      }
      if (auto ratio = doc->GetNumber("answered_ratio"); ratio.ok()) {
        body["answered_ratio"] = *ratio;
      }
      for (const char* key : {"all_requests_answered", "zero_protocol_errors",
                              "order_preserved"}) {
        auto value = doc->GetBool(key);
        body[key] = value.ok() && *value;
      }
    }
    std::ofstream out(json_path);
    out << util::JsonValue(std::move(body)).Dump(2) << "\n";
    if (!out) {
      std::cerr << "audit_router: cannot write " << json_path << "\n";
      return 1;
    }
    std::cerr << "audit_router: wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
